//! Streaming run observation: per-round sinks with lazy instrumentation
//! and early-stop control flow.
//!
//! The paper's guarantees are `lim sup` statements — the estimate *settles
//! inside* the `(2f/n)ε`-ball (Theorems 3–6) — which a fixed-horizon,
//! dense-in-memory [`Trace`] serves poorly: long-horizon runs want
//! streaming metrics, convergence-triggered termination, and the option to
//! skip per-round instrumentation entirely. This module is the sink side
//! of that contract, shared by every driver in the workspace:
//!
//! * [`RunObserver`] — the per-round hook. A driver calls
//!   [`RunObserver::observe`] once per synchronous round with a
//!   [`RoundView`] and stops the run early when the observer returns
//!   [`ControlFlow::Halt`]. "Round" here means *one aggregation of the
//!   estimate*: the asynchronous bounded-staleness server has no
//!   synchronous rounds, but it aggregates on a fixed step cadence and
//!   reports one view per aggregation step, so recorders, halt rules,
//!   and streamers compose with it unchanged.
//! * [`RoundView`] — a lazy window onto one round. Iteration index,
//!   estimate, and filtered gradient are free; the derived series
//!   (`loss`, `distance`, `grad_norm`, `phi`) are computed **on first
//!   access** through a driver-supplied [`MetricSource`] and memoized, so
//!   an observer that reads nothing costs nothing — in particular, the
//!   per-round honest-cost pass behind `loss` never runs for
//!   pure-throughput observers.
//! * [`Probe`] — the mask of derived metrics an observer declares it will
//!   read. Drivers whose metric inputs are transient (e.g. the
//!   peer-to-peer runtime, which overwrites the leader's aggregate while
//!   processing later agents) consult the probe to decide what to capture
//!   eagerly; everything outside the probe may be skipped.
//! * [`RunSummary`] — the always-present result of an observed run: the
//!   final record (computed once, at the end), the number of rounds
//!   executed, and why the run stopped ([`HaltReason`]).
//!
//! Built-in observers: [`TraceRecorder`] (dense or every-`k` subsampled —
//! bit-identical to the historical traces at `k = 1`), [`ConvergenceHalt`]
//! (deterministic early stop once the distance stays inside a
//! radius-plus-slack window — the streaming counterpart of
//! `abft_dgd::convergence::settles_within`), [`CsvStreamer`]
//! (constant-memory CSV streaming through a [`std::io::BufWriter`]), and
//! [`NullObserver`]. Observers compose as tuples: `(recorder, halt)` runs
//! both per round and halts when either asks to.
//!
//! # Example
//!
//! ```
//! use abft_core::observe::{ControlFlow, RoundView, RunObserver, TraceRecorder};
//!
//! struct PrintDistance;
//! impl RunObserver for PrintDistance {
//!     fn probe(&self) -> abft_core::observe::Probe {
//!         abft_core::observe::Probe::DISTANCE
//!     }
//!     fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow {
//!         println!("t = {}: d = {}", view.iteration(), view.distance());
//!         ControlFlow::Continue
//!     }
//! }
//!
//! // Observers compose as tuples; drivers call `observe` once per round.
//! let mut observer = (TraceRecorder::dense("demo"), PrintDistance);
//! let _ = &mut observer as &mut dyn RunObserver;
//! ```

use crate::error::CoreError;
use crate::trace::{IterationRecord, Trace};
use std::cell::Cell;
use std::io::{BufWriter, Write};
use std::path::Path;

/// The set of derived per-round metrics an observer intends to read.
///
/// Iteration index, estimate, and filtered gradient are always available
/// for free; the four derived series cost real work (`loss` is a full
/// pass over the honest costs). An observer's probe is a *contract*: the
/// driver guarantees the probed metrics are readable from every
/// [`RoundView`] it hands out, and may skip capturing anything outside
/// the probe. Reading an unprobed metric is a logic error (checked by a
/// debug assertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Probe {
    /// Reads the honest aggregate loss `Σ_{i∈H} Q_i(x_t)`.
    pub loss: bool,
    /// Reads the approximation error `‖x_t − reference‖`.
    pub distance: bool,
    /// Reads the filtered gradient norm.
    pub grad_norm: bool,
    /// Reads Theorem 3's inner product `φ_t`.
    pub phi: bool,
}

impl Probe {
    /// Reads nothing — the pure-throughput probe.
    pub const NONE: Probe = Probe {
        loss: false,
        distance: false,
        grad_norm: false,
        phi: false,
    };

    /// Reads every derived metric (the [`TraceRecorder`] probe).
    pub const ALL: Probe = Probe {
        loss: true,
        distance: true,
        grad_norm: true,
        phi: true,
    };

    /// Reads only the distance series (the [`ConvergenceHalt`] probe).
    pub const DISTANCE: Probe = Probe {
        distance: true,
        ..Probe::NONE
    };

    /// The union of two probes — what a composite observer declares.
    #[must_use]
    pub fn union(self, other: Probe) -> Probe {
        Probe {
            loss: self.loss || other.loss,
            distance: self.distance || other.distance,
            grad_norm: self.grad_norm || other.grad_norm,
            phi: self.phi || other.phi,
        }
    }

    /// `true` when at least one derived metric is probed.
    pub fn any(self) -> bool {
        self.loss || self.distance || self.grad_norm || self.phi
    }
}

/// What an observer tells the driver after seeing a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a dropped ControlFlow silently ignores an observer's halt request"]
pub enum ControlFlow {
    /// Keep iterating.
    Continue,
    /// Stop the run after this round. The round the observer just saw
    /// becomes the final record; the estimate is **not** updated again.
    Halt,
}

impl ControlFlow {
    /// `true` for [`ControlFlow::Halt`].
    pub fn is_halt(self) -> bool {
        matches!(self, ControlFlow::Halt)
    }

    /// Combines two observers' verdicts: halt wins.
    pub fn merge(self, other: ControlFlow) -> ControlFlow {
        if self.is_halt() || other.is_halt() {
            ControlFlow::Halt
        } else {
            ControlFlow::Continue
        }
    }
}

/// Why an observed run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The run executed its full iteration budget `T`.
    Completed,
    /// An observer returned [`ControlFlow::Halt`] at this iteration.
    Observer {
        /// The iteration whose round the observer halted on; the final
        /// record is that round's record.
        at_iteration: usize,
    },
}

impl HaltReason {
    /// `true` when an observer stopped the run before its horizon.
    pub fn is_early(self) -> bool {
        matches!(self, HaltReason::Observer { .. })
    }
}

/// The always-present result of an observed run: what every consumer can
/// rely on even when no trace was recorded.
///
/// The final record is computed exactly once, at the last executed round —
/// a `SummaryOnly` run therefore evaluates the honest costs once per
/// *run*, not once per round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// The last executed round's full record (fields computed at the
    /// final estimate).
    pub final_record: IterationRecord,
    /// Rounds executed, counting the record round at the final estimate —
    /// `iterations + 1` for a completed run, `at_iteration + 1` for a
    /// halted one. Equals the dense trace length.
    pub rounds: usize,
    /// Why the run stopped.
    pub halt: HaltReason,
}

impl RunSummary {
    /// Final approximation error `‖x_out − reference‖` — infallible, in
    /// contrast to the historical `trace.final_distance().expect(…)` path.
    pub fn final_distance(&self) -> f64 {
        self.final_record.distance
    }
}

/// Driver-side provider of the derived per-round metrics.
///
/// Each method computes its metric from the driver's current round state;
/// [`RoundView`] calls them at most once per round (on first access) and
/// memoizes the result, so implementations need no caching of their own.
pub trait MetricSource {
    /// The honest aggregate loss `Σ_{i∈H} Q_i(x_t)` — the expensive pass.
    fn loss(&self) -> f64;
    /// The approximation error `‖x_t − reference‖`.
    fn distance(&self) -> f64;
    /// The filtered gradient norm.
    fn grad_norm(&self) -> f64;
    /// Theorem 3's inner product `φ_t = ⟨x_t − reference, filtered⟩`.
    fn phi(&self) -> f64;
}

/// A lazy, memoizing window onto one synchronous round.
///
/// Construction is free; each derived metric is computed through the
/// [`MetricSource`] on first access and cached for the round, so the cost
/// of a round's instrumentation is exactly the set of metrics its
/// observers actually read.
pub struct RoundView<'a> {
    iteration: usize,
    estimate: &'a [f64],
    aggregate: &'a [f64],
    source: &'a dyn MetricSource,
    probe: Probe,
    loss: Cell<Option<f64>>,
    distance: Cell<Option<f64>>,
    grad_norm: Cell<Option<f64>>,
    phi: Cell<Option<f64>>,
}

impl<'a> RoundView<'a> {
    /// A view for iteration `iteration` at estimate `estimate` with
    /// filtered gradient `aggregate`, deriving metrics from `source`.
    /// `probe` is the observer's declared mask (used only to debug-assert
    /// the contract; metrics are computed lazily either way).
    pub fn new(
        iteration: usize,
        estimate: &'a [f64],
        aggregate: &'a [f64],
        source: &'a dyn MetricSource,
        probe: Probe,
    ) -> Self {
        RoundView {
            iteration,
            estimate,
            aggregate,
            source,
            probe,
            loss: Cell::new(None),
            distance: Cell::new(None),
            grad_norm: Cell::new(None),
            phi: Cell::new(None),
        }
    }

    /// The iteration index `t` (0-based).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The current estimate `x_t`.
    pub fn estimate(&self) -> &[f64] {
        self.estimate
    }

    /// The filtered (aggregated) gradient of this round.
    pub fn filtered_gradient(&self) -> &[f64] {
        self.aggregate
    }

    fn memo(cell: &Cell<Option<f64>>, compute: impl FnOnce() -> f64) -> f64 {
        match cell.get() {
            Some(value) => value,
            None => {
                let value = compute();
                cell.set(Some(value));
                value
            }
        }
    }

    /// Honest aggregate loss `Σ_{i∈H} Q_i(x_t)` (computed on first access).
    pub fn loss(&self) -> f64 {
        debug_assert!(self.probe.loss, "loss read outside the declared probe");
        Self::memo(&self.loss, || self.source.loss())
    }

    /// Approximation error `‖x_t − reference‖` (computed on first access).
    pub fn distance(&self) -> f64 {
        debug_assert!(
            self.probe.distance,
            "distance read outside the declared probe"
        );
        Self::memo(&self.distance, || self.source.distance())
    }

    /// Filtered gradient norm (computed on first access).
    pub fn grad_norm(&self) -> f64 {
        debug_assert!(
            self.probe.grad_norm,
            "grad_norm read outside the declared probe"
        );
        Self::memo(&self.grad_norm, || self.source.grad_norm())
    }

    /// Theorem 3's `φ_t` (computed on first access).
    pub fn phi(&self) -> f64 {
        debug_assert!(self.probe.phi, "phi read outside the declared probe");
        Self::memo(&self.phi, || self.source.phi())
    }

    /// The full [`IterationRecord`] of this round. Forces all four derived
    /// metrics (each memoized, so a later [`RoundView::record`] call — or
    /// an earlier single-metric read — shares the work). Field order
    /// matches the historical record construction exactly.
    ///
    /// This accessor ignores the probe: drivers use it to build the final
    /// [`RunSummary`] record regardless of what the observers declared.
    pub fn record(&self) -> IterationRecord {
        IterationRecord {
            iteration: self.iteration,
            loss: Self::memo(&self.loss, || self.source.loss()),
            distance: Self::memo(&self.distance, || self.source.distance()),
            grad_norm: Self::memo(&self.grad_norm, || self.source.grad_norm()),
            phi: Self::memo(&self.phi, || self.source.phi()),
        }
    }
}

/// Drives one observation round for a driver loop: shows `view` to the
/// observer and decides whether the run ends here.
///
/// Returns `Some(RunSummary)` — the signal to stop, with the summary's
/// final record taken from this round — when the observer halts or when
/// this is the final record round (`advance == false`); `None` when the
/// loop should apply the update and continue. Every driver funnels
/// through this helper, which is what keeps halt bookkeeping (the
/// `HaltReason`, the `rounds = t + 1` count, the compute-final-record-
/// exactly-once rule) identical across backends.
pub fn observe_round(
    observer: &mut dyn RunObserver,
    view: &RoundView<'_>,
    advance: bool,
) -> Option<RunSummary> {
    let stop = observer.observe(view).is_halt();
    if !stop && advance {
        return None;
    }
    // A halt on the final record round is indistinguishable from
    // completion: the run was over either way.
    let halt = if stop && advance {
        HaltReason::Observer {
            at_iteration: view.iteration(),
        }
    } else {
        HaltReason::Completed
    };
    Some(RunSummary {
        final_record: view.record(),
        rounds: view.iteration() + 1,
        halt,
    })
}

/// A per-round sink for an observed run.
///
/// Drivers call [`RunObserver::observe`] exactly once per synchronous
/// round — including the final record round at the last estimate — in
/// iteration order, and stop early when it returns [`ControlFlow::Halt`].
/// Observation must not mutate the run: two runs differing only in their
/// observers produce identical estimates (pinned by the cross-backend
/// equivalence tests).
pub trait RunObserver {
    /// The derived metrics this observer will read. Drivers may skip
    /// capturing anything outside the union of their observers' probes.
    /// Defaults to [`Probe::ALL`] (always safe, never fastest).
    fn probe(&self) -> Probe {
        Probe::ALL
    }

    /// Observes one round; return [`ControlFlow::Halt`] to stop the run
    /// with this round as its final record.
    fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow;
}

/// Observers compose as tuples: both see every round (even when the first
/// halts, so a recorder paired with a halt rule still captures the halt
/// round), and the run stops when either asks to. Probes union.
impl<A: RunObserver, B: RunObserver> RunObserver for (A, B) {
    fn probe(&self) -> Probe {
        self.0.probe().union(self.1.probe())
    }

    fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow {
        let first = self.0.observe(view);
        first.merge(self.1.observe(view))
    }
}

impl RunObserver for Box<dyn RunObserver + '_> {
    fn probe(&self) -> Probe {
        self.as_ref().probe()
    }

    fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow {
        self.as_mut().observe(view)
    }
}

/// The do-nothing observer: probes nothing, never halts. The observer of
/// a pure-throughput (`SummaryOnly`) run — with it, no per-round loss/φ
/// evaluation ever happens.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn probe(&self) -> Probe {
        Probe::NONE
    }

    fn observe(&mut self, _view: &RoundView<'_>) -> ControlFlow {
        ControlFlow::Continue
    }
}

/// Records rounds into an in-memory [`Trace`] — dense, or subsampled to
/// every `k`-th iteration.
///
/// At `k = 1` the recorded trace is **bit-identical** to the historical
/// dense traces (same fields, computed from the same values in the same
/// order); at `k > 1` it contains exactly the dense trace's records at
/// iterations `0, k, 2k, …` (the last executed round is *not* forced in —
/// it lives in the [`RunSummary`] instead).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    trace: Trace,
    every: usize,
}

impl TraceRecorder {
    /// Records every round (the historical dense trace).
    pub fn dense(name: impl Into<String>) -> Self {
        Self::every(name, 1)
    }

    /// Records iterations `0, k, 2k, …` (`k` is clamped to at least 1).
    pub fn every(name: impl Into<String>, k: usize) -> Self {
        TraceRecorder {
            trace: Trace::new(name),
            every: k.max(1),
        }
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, yielding the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl RunObserver for TraceRecorder {
    fn probe(&self) -> Probe {
        Probe::ALL
    }

    fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow {
        if view.iteration().is_multiple_of(self.every) {
            self.trace.push(view.record());
        }
        ControlFlow::Continue
    }
}

/// Deterministic early stop once the run has *settled*: halts when the
/// distance stays at or below `radius + slack` for `window` consecutive
/// rounds — the streaming counterpart of
/// `abft_dgd::convergence::settles_within`, evaluated online instead of
/// on a recorded trace.
///
/// Determinism: distances are bit-identical across backends and
/// aggregation thread counts (the pool's fixed tile schedule), so the
/// halt round is too — pinned by the cross-backend observation tests.
#[derive(Debug, Clone)]
pub struct ConvergenceHalt {
    radius: f64,
    slack: f64,
    window: usize,
    inside: usize,
}

impl ConvergenceHalt {
    /// Halts once `‖x_t − reference‖ ≤ radius + slack` has held for
    /// `window` consecutive rounds (`window` is clamped to at least 1).
    pub fn new(radius: f64, slack: f64, window: usize) -> Self {
        ConvergenceHalt {
            radius,
            slack,
            window: window.max(1),
            inside: 0,
        }
    }

    /// Halts once the distance has been at or below `radius` for `window`
    /// consecutive rounds (zero slack).
    pub fn within(radius: f64, window: usize) -> Self {
        Self::new(radius, 0.0, window)
    }

    /// Consecutive in-ball rounds seen so far.
    pub fn streak(&self) -> usize {
        self.inside
    }
}

impl RunObserver for ConvergenceHalt {
    fn probe(&self) -> Probe {
        Probe::DISTANCE
    }

    fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow {
        // `<=` with a NaN distance is false, so a diverged run can never
        // satisfy the halt rule by accident.
        if view.distance() <= self.radius + self.slack {
            self.inside += 1;
        } else {
            self.inside = 0;
        }
        if self.inside >= self.window {
            ControlFlow::Halt
        } else {
            ControlFlow::Continue
        }
    }
}

/// Streams records to a writer in the workspace's standard trace CSV
/// format (`iteration,loss,distance,grad_norm,phi`, values in `{:.10e}`)
/// through a [`BufWriter`] — constant memory no matter how long the run.
///
/// The emitted bytes are identical to
/// [`Trace::write_csv`](crate::Trace::write_csv) over the same records
/// (pinned by test). Like a trace recorder it can subsample with
/// [`CsvStreamer::subsample`].
///
/// I/O errors do not perturb the run: the first failure is latched, further
/// writes are skipped, and the error surfaces from [`CsvStreamer::finish`]
/// — observation must never change where the estimate ends up.
pub struct CsvStreamer<W: Write> {
    sink: Option<BufWriter<W>>,
    every: usize,
    header_written: bool,
    error: Option<std::io::Error>,
}

impl CsvStreamer<std::fs::File> {
    /// Streams to a freshly created file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> CsvStreamer<W> {
    /// Streams every record to `writer`.
    pub fn new(writer: W) -> Self {
        CsvStreamer {
            sink: Some(BufWriter::new(writer)),
            every: 1,
            header_written: false,
            error: None,
        }
    }

    /// Streams only iterations `0, k, 2k, …` (`k` clamped to at least 1).
    #[must_use]
    pub fn subsample(mut self, k: usize) -> Self {
        self.every = k.max(1);
        self
    }

    fn write_row(&mut self, record: &IterationRecord) -> std::io::Result<()> {
        // The sink is only taken by `finish`; a row arriving after that
        // would be an observer-protocol bug, and dropping it beats
        // panicking mid-run.
        let Some(sink) = self.sink.as_mut() else {
            return Ok(());
        };
        if !self.header_written {
            writeln!(sink, "iteration,loss,distance,grad_norm,phi")?;
            self.header_written = true;
        }
        writeln!(
            sink,
            "{},{:.10e},{:.10e},{:.10e},{:.10e}",
            record.iteration, record.loss, record.distance, record.grad_norm, record.phi
        )
    }

    /// Flushes the stream and returns the first I/O error, if any
    /// occurred while observing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] for the latched write failure or a
    /// failing flush.
    pub fn finish(mut self) -> Result<(), CoreError> {
        if let Some(error) = self.error.take() {
            return Err(error.into());
        }
        if let Some(mut sink) = self.sink.take() {
            sink.flush()?;
        }
        Ok(())
    }
}

impl<W: Write> RunObserver for CsvStreamer<W> {
    fn probe(&self) -> Probe {
        Probe::ALL
    }

    fn observe(&mut self, view: &RoundView<'_>) -> ControlFlow {
        if self.error.is_none() && view.iteration().is_multiple_of(self.every) {
            let record = view.record();
            if let Err(error) = self.write_row(&record) {
                self.error = Some(error);
            }
        }
        ControlFlow::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source with fixed metric values that counts how often each is
    /// actually computed.
    struct Counting {
        loss_calls: Cell<usize>,
        distance: f64,
    }

    impl Counting {
        fn new(distance: f64) -> Self {
            Counting {
                loss_calls: Cell::new(0),
                distance,
            }
        }
    }

    impl MetricSource for Counting {
        fn loss(&self) -> f64 {
            self.loss_calls.set(self.loss_calls.get() + 1);
            7.5
        }
        fn distance(&self) -> f64 {
            self.distance
        }
        fn grad_norm(&self) -> f64 {
            2.0
        }
        fn phi(&self) -> f64 {
            0.25
        }
    }

    fn view<'a>(t: usize, source: &'a Counting, probe: Probe) -> RoundView<'a> {
        RoundView::new(t, &[], &[], source, probe)
    }

    #[test]
    fn probe_unions_and_any() {
        assert!(!Probe::NONE.any());
        assert!(Probe::DISTANCE.any());
        assert_eq!(Probe::NONE.union(Probe::ALL), Probe::ALL);
        let u = Probe::DISTANCE.union(Probe {
            phi: true,
            ..Probe::NONE
        });
        assert!(u.distance && u.phi && !u.loss && !u.grad_norm);
    }

    #[test]
    fn view_is_lazy_and_memoized() {
        let source = Counting::new(1.0);
        let v = view(3, &source, Probe::ALL);
        assert_eq!(source.loss_calls.get(), 0, "nothing computed up front");
        assert_eq!(v.loss(), 7.5);
        assert_eq!(v.loss(), 7.5);
        let record = v.record();
        assert_eq!(record.loss, 7.5);
        assert_eq!(record.iteration, 3);
        assert_eq!(source.loss_calls.get(), 1, "memoized across reads");
    }

    #[test]
    fn trace_recorder_subsamples() {
        let source = Counting::new(1.0);
        let mut dense = TraceRecorder::dense("d");
        let mut sparse = TraceRecorder::every("s", 3);
        for t in 0..8 {
            let v = view(t, &source, Probe::ALL);
            assert!(!dense.observe(&v).is_halt());
            let v = view(t, &source, Probe::ALL);
            assert!(!sparse.observe(&v).is_halt());
        }
        assert_eq!(dense.trace().len(), 8);
        let sparse = sparse.into_trace();
        assert_eq!(
            sparse
                .records()
                .iter()
                .map(|r| r.iteration)
                .collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
        // Subsampled records equal the dense trace's k-th records.
        for r in sparse.records() {
            assert_eq!(r, &dense.trace().records()[r.iteration]);
        }
    }

    #[test]
    fn convergence_halt_requires_a_full_window() {
        let mut halt = ConvergenceHalt::new(1.0, 0.1, 3);
        let far = Counting::new(5.0);
        let near = Counting::new(1.05);
        let run = [&far, &near, &near, &far, &near, &near, &near];
        let mut halted_at = None;
        for (t, source) in run.iter().enumerate() {
            let v = view(t, source, Probe::DISTANCE);
            if halt.observe(&v).is_halt() {
                halted_at = Some(t);
                break;
            }
        }
        // The streak of 2 at t = 1..2 is broken at t = 3; the streak that
        // halts is t = 4, 5, 6.
        assert_eq!(halted_at, Some(6));
    }

    #[test]
    fn convergence_halt_never_fires_on_nan() {
        let mut halt = ConvergenceHalt::new(f64::INFINITY, 0.0, 1);
        let nan = Counting::new(f64::NAN);
        let v = view(0, &nan, Probe::DISTANCE);
        assert!(!halt.observe(&v).is_halt());
    }

    #[test]
    fn tuple_composition_halts_when_either_does_and_both_see_the_round() {
        let source = Counting::new(0.0);
        let mut pair = (TraceRecorder::dense("t"), ConvergenceHalt::within(1.0, 1));
        assert_eq!(pair.probe(), Probe::ALL);
        let v = view(0, &source, Probe::ALL);
        assert!(pair.observe(&v).is_halt());
        // The recorder captured the halt round.
        assert_eq!(pair.0.trace().len(), 1);
    }

    #[test]
    fn csv_streamer_matches_trace_write_csv() {
        let source = Counting::new(1.5);
        let mut buffer = Vec::new();
        {
            let mut streamer = CsvStreamer::new(&mut buffer);
            let mut recorder = TraceRecorder::dense("t");
            for t in 0..4 {
                let v = view(t, &source, Probe::ALL);
                let _ = streamer.observe(&v);
                let _ = recorder.observe(&v);
            }
            streamer.finish().unwrap();
            let expected = recorder.trace().to_csv_table().to_csv_string();
            let streamed = String::from_utf8(buffer.clone()).unwrap();
            assert_eq!(streamed, expected);
        }
    }

    #[test]
    fn csv_streamer_latches_io_errors_without_halting() {
        /// A writer that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let source = Counting::new(1.0);
        let mut streamer = CsvStreamer::new(Broken);
        for t in 0..3 {
            let v = view(t, &source, Probe::ALL);
            assert!(!streamer.observe(&v).is_halt(), "I/O never stops the run");
        }
        assert!(streamer.finish().is_err());
    }

    #[test]
    fn null_observer_reads_nothing() {
        let source = Counting::new(1.0);
        let v = view(0, &source, Probe::NONE);
        assert!(!NullObserver.observe(&v).is_halt());
        assert_eq!(source.loss_calls.get(), 0);
    }

    #[test]
    fn summary_reports_infallible_distance() {
        let summary = RunSummary {
            final_record: IterationRecord {
                iteration: 9,
                loss: 1.0,
                distance: 0.5,
                grad_norm: 0.1,
                phi: 0.0,
            },
            rounds: 10,
            halt: HaltReason::Observer { at_iteration: 9 },
        };
        assert_eq!(summary.final_distance(), 0.5);
        assert!(summary.halt.is_early());
        assert!(!HaltReason::Completed.is_early());
    }
}
