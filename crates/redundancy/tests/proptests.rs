//! Property-based tests for the theory crate: Lemma 3, Hausdorff axioms,
//! redundancy and the Theorem 2 guarantee on random instances.

use abft_core::subsets::KSubsets;
use abft_core::SystemConfig;
use abft_linalg::Vector;
use abft_problems::RegressionProblem;
use abft_redundancy::{
    exact_resilient_output, max_subset_sum_norm, measure_redundancy, MedianOracle, MinimizerSet,
    RegressionOracle,
};
use proptest::prelude::*;

fn vectors(count: usize, dim: usize) -> impl Strategy<Value = Vec<Vector>> {
    prop::collection::vec(
        prop::collection::vec(-10.0..10.0f64, dim).prop_map(Vector::from),
        count,
    )
}

proptest! {
    /// Lemma 3: if every q-subset sum of p vectors has norm ≤ r (q ≤ p/2),
    /// then every individual vector has norm ≤ 2r.
    #[test]
    fn lemma_3_holds(vs in vectors(6, 3), q in 1usize..=3) {
        let r = max_subset_sum_norm(&vs, q);
        for v in &vs {
            prop_assert!(
                v.norm() <= 2.0 * r + 1e-9,
                "vector norm {} exceeds 2r = {}",
                v.norm(),
                2.0 * r
            );
        }
    }

    /// Hausdorff distance on finite sets satisfies the metric axioms
    /// (identity, symmetry, triangle inequality).
    #[test]
    fn hausdorff_axioms_on_finite_sets(
        a in vectors(3, 2),
        b in vectors(4, 2),
        c in vectors(2, 2),
    ) {
        let sa = MinimizerSet::Finite(a);
        let sb = MinimizerSet::Finite(b);
        let sc = MinimizerSet::Finite(c);
        let dab = sa.hausdorff(&sb).expect("comparable");
        let dba = sb.hausdorff(&sa).expect("comparable");
        let daa = sa.hausdorff(&sa).expect("comparable");
        let dac = sa.hausdorff(&sc).expect("comparable");
        let dcb = sc.hausdorff(&sb).expect("comparable");
        prop_assert!(daa.abs() < 1e-12, "identity violated");
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry violated");
        prop_assert!(dab <= dac + dcb + 1e-9, "triangle violated");
    }

    /// Hausdorff on intervals: axioms hold there too.
    #[test]
    fn hausdorff_axioms_on_intervals(
        a in -10.0..10.0f64, wa in 0.0..5.0f64,
        b in -10.0..10.0f64, wb in 0.0..5.0f64,
        c in -10.0..10.0f64, wc in 0.0..5.0f64,
    ) {
        let sa = MinimizerSet::interval(a, a + wa);
        let sb = MinimizerSet::interval(b, b + wb);
        let sc = MinimizerSet::interval(c, c + wc);
        let dab = sa.hausdorff(&sb).expect("comparable");
        let dba = sb.hausdorff(&sa).expect("comparable");
        let dac = sa.hausdorff(&sc).expect("comparable");
        let dcb = sc.hausdorff(&sb).expect("comparable");
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(sa.hausdorff(&sa).expect("comparable") < 1e-12);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }

    /// Noiseless random regression instances are exactly 2f-redundant:
    /// measured ε ≈ 0.
    #[test]
    fn noiseless_instances_have_zero_epsilon(seed in 0u64..50) {
        let config = SystemConfig::new(6, 1).expect("valid");
        let x_star = Vector::from(vec![1.0, -0.5]);
        let p = RegressionProblem::random(config, 2, &x_star, 0.0, seed).expect("generable");
        let report = measure_redundancy(&RegressionOracle::new(&p), config).expect("measurable");
        prop_assert!(report.epsilon < 1e-6, "epsilon = {}", report.epsilon);
    }

    /// Theorem 2 end-to-end on random noisy instances: the exact algorithm's
    /// output is within 2ε of every (n−f)-subset minimizer, where ε is the
    /// measured redundancy of the submitted (all-honest) instance.
    #[test]
    fn theorem_2_guarantee_on_random_instances(
        seed in 0u64..30,
        noise in 0.0..0.3f64,
    ) {
        let config = SystemConfig::new(6, 1).expect("valid");
        let x_star = Vector::from(vec![0.5, 2.0]);
        let p = RegressionProblem::random(config, 2, &x_star, noise, seed).expect("generable");
        let oracle = RegressionOracle::new(&p);
        let eps = measure_redundancy(&oracle, config).expect("measurable").epsilon;
        let out = exact_resilient_output(&oracle, config).expect("computable");
        for subset in KSubsets::new(6, 5) {
            let x_s = p.subset_minimizer(&subset).expect("full rank");
            prop_assert!(
                out.output.dist(&x_s) <= 2.0 * eps + 1e-7,
                "distance {} exceeds 2eps = {}",
                out.output.dist(&x_s),
                2.0 * eps
            );
        }
    }

    /// The same guarantee with set-valued minimizers (median intervals):
    /// dist(output, argmin Σ_Ŝ) ≤ 2ε for every honest quorum.
    #[test]
    fn theorem_2_with_median_intervals(
        mut centers in prop::collection::vec(-5.0..5.0f64, 5),
        spread in 0.0..0.5f64,
    ) {
        // Cluster the centers to keep ε moderate.
        let base = centers[0];
        for c in centers.iter_mut().skip(1) {
            *c = base + *c * spread / 5.0;
        }
        let config = SystemConfig::new(5, 1).expect("valid");
        let oracle = MedianOracle::new(centers);
        let eps = measure_redundancy(&oracle, config).expect("measurable").epsilon;
        let out = exact_resilient_output(&oracle, config).expect("computable");
        for subset in KSubsets::new(5, 4) {
            let argmin = oracle_argmin(&oracle, &subset);
            prop_assert!(
                argmin.dist_to_point(&out.output) <= 2.0 * eps + 1e-9,
                "interval distance exceeds 2eps"
            );
        }
    }
}

fn oracle_argmin(oracle: &MedianOracle, subset: &[usize]) -> MinimizerSet {
    use abft_redundancy::MinimizerOracle;
    oracle.argmin(subset).expect("non-empty subset")
}
