//! Resilience-bound calculators for Theorems 4, 5 and 6.
//!
//! These closed-form factors convert a measured redundancy `ε` into the
//! asymptotic approximation radius of DGD with each filter:
//!
//! * **Theorem 4 (CGE)**: `lim ‖x_t − x_H‖ ≤ D·ε` with `D = 4µf/(αγ)` and
//!   `α = 1 − (f/n)(1 + 2µ/γ)`, requiring `α > 0`.
//! * **Theorem 5 (CGE, sharper)**: `D = (1+2f)(n−2f)µ/(αnγ)` with
//!   `α = 1 − (f/n)(1 + µ/γ)`, requiring `f ≤ n/3` and `α > 0`.
//! * **Theorem 6 (CWTM)**: `D′ = 2√d·nµλ/(γ − √d·µλ)`, requiring
//!   `λ < γ/(µ√d)`.

/// The CGE admissibility margin `α = 1 − (f/n)(1 + 2µ/γ)` of Theorem 4.
///
/// DGD + CGE is guaranteed resilient only when this is positive, i.e.
/// `f/n < 1/(1 + 2µ/γ)`.
///
/// # Panics
///
/// Panics when `n == 0` or `µ`/`γ` are non-positive.
pub fn cge_alpha(n: usize, f: usize, mu: f64, gamma: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!(mu > 0.0 && gamma > 0.0, "mu and gamma must be positive");
    1.0 - (f as f64 / n as f64) * (1.0 + 2.0 * mu / gamma)
}

/// The Theorem 4 resilience factor `D = 4µf/(αγ)`: the asymptotic error is
/// at most `D·ε`. Returns `None` when `α ≤ 0` (guarantee vacuous).
///
/// Note: for the paper's own instance (n = 6, f = 1, µ = 2, γ = 0.712) the
/// margin is `α ≈ −0.10 < 0`, so Theorem 4 certifies nothing there — use the
/// sharper [`cge_v2_resilience_factor`] (Theorem 5), whose margin is
/// positive. See `EXPERIMENTS.md`.
///
/// # Example
///
/// ```
/// // A well-conditioned system: n = 10, f = 1, µ = γ = 1 ⇒ α = 0.7.
/// let d = abft_redundancy::cge_resilience_factor(10, 1, 1.0, 1.0).expect("alpha > 0");
/// assert!((d - 4.0 / 0.7).abs() < 1e-12);
/// // The paper instance violates Theorem 4's condition:
/// assert!(abft_redundancy::cge_resilience_factor(6, 1, 2.0, 0.712).is_none());
/// ```
pub fn cge_resilience_factor(n: usize, f: usize, mu: f64, gamma: f64) -> Option<f64> {
    let alpha = cge_alpha(n, f, mu, gamma);
    if alpha <= 0.0 {
        return None;
    }
    if f == 0 {
        // D = 0: exact convergence in the fault-free case (the paper notes
        // D = 0 when f = 0).
        return Some(0.0);
    }
    Some(4.0 * mu * f as f64 / (alpha * gamma))
}

/// The Theorem 5 admissibility margin `α = 1 − (f/n)(1 + µ/γ)` — weaker
/// requirement than Theorem 4's (the factor on µ/γ drops from 2 to 1).
///
/// # Panics
///
/// Panics when `n == 0` or `µ`/`γ` are non-positive.
pub fn cge_v2_alpha(n: usize, f: usize, mu: f64, gamma: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!(mu > 0.0 && gamma > 0.0, "mu and gamma must be positive");
    1.0 - (f as f64 / n as f64) * (1.0 + mu / gamma)
}

/// The Theorem 5 resilience factor `D = (1 + 2f)(n − 2f)µ/(αnγ)`.
///
/// Returns `None` when `f > n/3` or `α ≤ 0`.
pub fn cge_v2_resilience_factor(n: usize, f: usize, mu: f64, gamma: f64) -> Option<f64> {
    if 3 * f > n {
        return None;
    }
    let alpha = cge_v2_alpha(n, f, mu, gamma);
    if alpha <= 0.0 {
        return None;
    }
    if f == 0 {
        // The (1 + 2f) factor does not vanish at f = 0, but Theorem 5's bound
        // is only about tolerating faults; with none present the DGD method
        // converges exactly (Theorem 4's D = 0 case applies).
        return Some(0.0);
    }
    Some((1.0 + 2.0 * f as f64) * (n as f64 - 2.0 * f as f64) * mu / (alpha * n as f64 * gamma))
}

/// Theorem 6's admissibility threshold for the gradient-diversity constant:
/// CWTM requires `λ < γ/(µ√d)`.
///
/// # Panics
///
/// Panics when `d == 0` or `µ`/`γ` are non-positive.
pub fn cwtm_lambda_threshold(d: usize, mu: f64, gamma: f64) -> f64 {
    assert!(d > 0, "dimension must be positive");
    assert!(mu > 0.0 && gamma > 0.0, "mu and gamma must be positive");
    gamma / (mu * (d as f64).sqrt())
}

/// The Theorem 6 resilience factor `D′ = 2√d·nµλ/(γ − √d·µλ)`: the
/// asymptotic error of DGD + CWTM is at most `D′·ε`. Returns `None` when
/// `λ ≥ γ/(µ√d)` (guarantee vacuous).
///
/// Note `D′` does not depend on `f` (as the paper remarks), only on the
/// gradient-diversity `λ` and the dimension `d`.
pub fn cwtm_resilience_factor(n: usize, d: usize, mu: f64, gamma: f64, lambda: f64) -> Option<f64> {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    let sqrt_d = (d as f64).sqrt();
    let denom = gamma - sqrt_d * mu * lambda;
    if denom <= 0.0 {
        return None;
    }
    Some(2.0 * sqrt_d * n as f64 * mu * lambda / denom)
}

/// The largest `f` for which Theorem 4's CGE guarantee is non-vacuous at
/// the given `(n, µ, γ)`: the largest `f` with `α > 0`, i.e.
/// `f < n/(1 + 2µ/γ)`.
pub fn max_tolerable_f_cge(n: usize, mu: f64, gamma: f64) -> usize {
    (0..=n / 2)
        .take_while(|&f| cge_alpha(n, f, mu, gamma) > 0.0)
        .last()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper instance's constants (Section 5 convention).
    const MU: f64 = 2.0;
    const GAMMA: f64 = 0.712;

    #[test]
    fn paper_instance_alpha_is_positive() {
        // f/n = 1/6 and 1/(1 + 2µ/γ) = 1/(1 + 5.618) ≈ 0.151. 1/6 ≈ 0.167
        // exceeds it, so Theorem 4's α is NEGATIVE for the paper instance —
        // the empirical success of CGE there goes beyond what Theorem 4
        // certifies. Theorem 5's weaker requirement does hold.
        let a4 = cge_alpha(6, 1, MU, GAMMA);
        assert!(a4 < 0.0, "alpha4 = {a4}");
        let a5 = cge_v2_alpha(6, 1, MU, GAMMA);
        assert!(a5 > 0.0, "alpha5 = {a5}");
    }

    #[test]
    fn theorem_4_factor_behaviour() {
        // A well-conditioned instance: µ = γ = 1 ⇒ α = 1 − 3f/n.
        assert!(cge_resilience_factor(10, 1, 1.0, 1.0).is_some());
        assert!(cge_resilience_factor(10, 3, 1.0, 1.0).is_some()); // α = 0.1
        assert!(cge_resilience_factor(10, 4, 1.0, 1.0).is_none()); // α < 0
        assert_eq!(cge_resilience_factor(10, 0, 1.0, 1.0), Some(0.0));
        // D grows with f.
        let d1 = cge_resilience_factor(10, 1, 1.0, 1.0).unwrap();
        let d2 = cge_resilience_factor(10, 2, 1.0, 1.0).unwrap();
        assert!(d2 > d1);
    }

    #[test]
    fn theorem_5_is_defined_where_4_fails_on_paper_instance() {
        assert!(cge_resilience_factor(6, 1, MU, GAMMA).is_none());
        let d5 = cge_v2_resilience_factor(6, 1, MU, GAMMA).unwrap();
        assert!(d5 > 0.0);
        // Plug in ε = 0.0890: the certified radius.
        let radius = d5 * 0.0890;
        assert!(radius > 0.0 && radius < 10.0, "radius = {radius}");
    }

    #[test]
    fn theorem_5_requires_f_at_most_n_over_3() {
        assert!(cge_v2_resilience_factor(9, 4, 1.0, 1.0).is_none());
        assert!(cge_v2_resilience_factor(9, 3, 1.0, 1.0).is_some());
        assert_eq!(cge_v2_resilience_factor(9, 0, 1.0, 1.0), Some(0.0));
    }

    #[test]
    fn cwtm_threshold_shrinks_with_dimension() {
        let t1 = cwtm_lambda_threshold(1, MU, GAMMA);
        let t4 = cwtm_lambda_threshold(4, MU, GAMMA);
        assert!((t4 - t1 / 2.0).abs() < 1e-12); // √4 = 2
    }

    #[test]
    fn cwtm_factor_behaviour() {
        let threshold = cwtm_lambda_threshold(2, MU, GAMMA);
        assert!(cwtm_resilience_factor(6, 2, MU, GAMMA, threshold).is_none());
        assert!(cwtm_resilience_factor(6, 2, MU, GAMMA, threshold * 1.5).is_none());
        let d = cwtm_resilience_factor(6, 2, MU, GAMMA, threshold * 0.5).unwrap();
        assert!(d > 0.0);
        // λ → 0 gives a vanishing radius.
        let tiny = cwtm_resilience_factor(6, 2, MU, GAMMA, 1e-9).unwrap();
        assert!(tiny < 1e-5);
        // D′ is f-independent by construction (no f parameter at all) and
        // increases with λ.
        let d_hi = cwtm_resilience_factor(6, 2, MU, GAMMA, threshold * 0.9).unwrap();
        assert!(d_hi > d);
    }

    #[test]
    fn max_tolerable_f_matches_alpha_sign() {
        let fmax = max_tolerable_f_cge(10, 1.0, 1.0); // α = 1 − 3f/10 > 0 ⇔ f ≤ 3
        assert_eq!(fmax, 3);
        for f in 0..=fmax {
            assert!(cge_alpha(10, f, 1.0, 1.0) > 0.0);
        }
        assert!(cge_alpha(10, fmax + 1, 1.0, 1.0) <= 0.0);
        // Badly conditioned: no faults tolerable.
        assert_eq!(max_tolerable_f_cge(4, 100.0, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn alpha_rejects_bad_constants() {
        let _ = cge_alpha(5, 1, 0.0, 1.0);
    }
}
