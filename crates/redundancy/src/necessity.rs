//! The Theorem 1 counterexample generator — an executable impossibility
//! witness.
//!
//! Theorem 1's proof constructs, for any violation of `(2f, ε)`-redundancy,
//! two indistinguishable scenarios whose honest minimizers are `2(ε + δ)`
//! apart, so no deterministic algorithm can be `(f, ε)`-resilient in both.
//! [`NecessityScenario`] builds that construction concretely with scalar
//! quadratic costs `Q_i(x) = (x − c_i)²`, letting the test suite *run* an
//! algorithm against both scenarios and verify it must fail one.

use crate::error::RedundancyError;
use crate::measure::MinimizerOracle;
use crate::minset::MinimizerSet;
use abft_core::SystemConfig;
use abft_linalg::Vector;

/// The two-scenario construction from the proof of Theorem 1.
///
/// All `n` agents submit scalar quadratic costs with centers
/// [`NecessityScenario::centers`]. The same submission is consistent with
/// two possible worlds:
///
/// * scenario (i): the honest set is `S = Ŝ ∪ left_group`, whose aggregate
///   minimizes at [`NecessityScenario::x_s`];
/// * scenario (ii): the honest set is `B ∪ Ŝ = Ŝ ∪ right_group`, whose
///   aggregate minimizes at [`NecessityScenario::x_bs`].
///
/// The construction places `|x_s − x_bs| = 2(ε + δ)`, so any single output
/// is at distance `> ε` from at least one of them.
#[derive(Debug, Clone)]
pub struct NecessityScenario {
    config: SystemConfig,
    centers: Vec<f64>,
    core: Vec<usize>,
    left_group: Vec<usize>,
    right_group: Vec<usize>,
    x_s: f64,
    x_bs: f64,
    epsilon: f64,
    delta: f64,
}

impl NecessityScenario {
    /// Builds the counterexample for a given `(n, f)` and target gap
    /// `ε + δ`.
    ///
    /// The core `Ŝ` consists of the first `n − 2f` agents, all centred at
    /// `0`; the "left" group of `f` agents pulls the aggregate of
    /// `S = Ŝ ∪ left` to `x_S = −(ε + δ)`; the "right" group mirrors it to
    /// `x_{B∪Ŝ} = +(ε + δ)`.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::InvalidInput`] when `f == 0` (no
    /// counterexample exists — exact optimization is possible) or when
    /// `ε` or `δ` are not positive and finite.
    // LINT-ALLOW(panic-reach): every index written below comes from a
    // range bounded by `n = config.n()`, the length of `centers`.
    pub fn build(config: SystemConfig, epsilon: f64, delta: f64) -> Result<Self, RedundancyError> {
        if config.f() == 0 {
            return Err(RedundancyError::InvalidInput {
                reason: "necessity construction requires f >= 1".to_string(),
            });
        }
        if !(epsilon > 0.0 && epsilon.is_finite() && delta > 0.0 && delta.is_finite()) {
            return Err(RedundancyError::InvalidInput {
                reason: format!("epsilon = {epsilon} and delta = {delta} must be positive"),
            });
        }
        let n = config.n();
        let f = config.f();
        let core_size = config.redundancy_quorum();
        let gap = epsilon + delta;

        // Mean of (n − f) centers: core at 0, f pulled agents at c.
        // mean = f·c/(n − f) = ±gap  ⇒  c = ±gap(n − f)/f.
        let pull = gap * (n - f) as f64 / f as f64;

        let mut centers = vec![0.0; n];
        let core: Vec<usize> = (0..core_size).collect();
        let left_group: Vec<usize> = (core_size..core_size + f).collect();
        let right_group: Vec<usize> = (core_size + f..n).collect();
        for &i in &left_group {
            centers[i] = -pull;
        }
        for &i in &right_group {
            centers[i] = pull;
        }

        Ok(NecessityScenario {
            config,
            centers,
            core,
            left_group,
            right_group,
            x_s: -gap,
            x_bs: gap,
            epsilon,
            delta,
        })
    }

    /// The submitted cost centers (`Q_i(x) = (x − c_i)²`).
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// The shared core `Ŝ` (size `n − 2f`).
    pub fn core(&self) -> &[usize] {
        &self.core
    }

    /// Scenario (i)'s honest set `S = Ŝ ∪ left_group` (size `n − f`).
    pub fn scenario_one_honest(&self) -> Vec<usize> {
        let mut s = self.core.clone();
        s.extend_from_slice(&self.left_group);
        s
    }

    /// Scenario (ii)'s honest set `B ∪ Ŝ = Ŝ ∪ right_group` (size `n − f`).
    pub fn scenario_two_honest(&self) -> Vec<usize> {
        let mut s = self.core.clone();
        s.extend_from_slice(&self.right_group);
        s
    }

    /// The honest minimizer of scenario (i).
    pub fn x_s(&self) -> f64 {
        self.x_s
    }

    /// The honest minimizer of scenario (ii).
    pub fn x_bs(&self) -> f64 {
        self.x_bs
    }

    /// The resilience target `ε` the construction defeats.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The strict-violation margin `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The configuration used.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Evaluates any candidate output against both scenarios: returns the
    /// distances `(|x − x_S|, |x − x_{B∪Ŝ}|)`. By construction their max
    /// exceeds `ε` for every `x` — the impossibility.
    pub fn judge(&self, output: f64) -> (f64, f64) {
        ((output - self.x_s).abs(), (output - self.x_bs).abs())
    }
}

impl MinimizerOracle for NecessityScenario {
    fn n(&self) -> usize {
        self.config.n()
    }

    fn dim(&self) -> usize {
        1
    }

    fn argmin(&self, subset: &[usize]) -> Result<MinimizerSet, RedundancyError> {
        if subset.is_empty() {
            return Err(RedundancyError::EmptyFamily {
                what: "subset for necessity oracle".to_string(),
            });
        }
        // argmin Σ (x − c_i)² is the mean of the centers.
        let mean = subset.iter().map(|&i| self.centers[i]).sum::<f64>() / subset.len() as f64;
        Ok(MinimizerSet::Point(Vector::from(vec![mean])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_resilient_output;

    fn scenario() -> NecessityScenario {
        let config = SystemConfig::new(5, 1).unwrap();
        NecessityScenario::build(config, 0.5, 0.1).unwrap()
    }

    #[test]
    fn construction_places_minimizers_symmetrically() {
        let s = scenario();
        assert_eq!(s.x_s(), -0.6);
        assert_eq!(s.x_bs(), 0.6);
        // Verify through the oracle: mean of scenario-one centers.
        let m1 = s.argmin(&s.scenario_one_honest()).unwrap().representative();
        assert!((m1[0] - s.x_s()).abs() < 1e-12);
        let m2 = s.argmin(&s.scenario_two_honest()).unwrap().representative();
        assert!((m2[0] - s.x_bs()).abs() < 1e-12);
    }

    #[test]
    fn every_output_fails_one_scenario() {
        let s = scenario();
        for probe in [-10.0, -0.6, -0.1, 0.0, 0.1, 0.6, 10.0] {
            let (d1, d2) = s.judge(probe);
            assert!(
                d1 > s.epsilon() || d2 > s.epsilon(),
                "output {probe} is epsilon-close to both minimizers"
            );
        }
    }

    #[test]
    fn gap_exceeds_two_epsilon() {
        let s = scenario();
        assert!((s.x_bs() - s.x_s()) > 2.0 * s.epsilon());
        assert!(((s.x_bs() - s.x_s()) - 2.0 * (s.epsilon() + s.delta())).abs() < 1e-12);
    }

    #[test]
    fn even_the_exact_algorithm_is_defeated() {
        // Theorem 2's algorithm is (f, 2ε′)-resilient only under redundancy;
        // the construction violates (2f, ε)-redundancy, so the algorithm's
        // single deterministic output must be > ε from one honest minimizer.
        let s = scenario();
        let out = exact_resilient_output(&s, s.config()).unwrap();
        let (d1, d2) = s.judge(out.output[0]);
        assert!(
            d1 > s.epsilon() || d2 > s.epsilon(),
            "exact algorithm escaped the impossibility: d1 = {d1}, d2 = {d2}"
        );
    }

    #[test]
    fn construction_validates_inputs() {
        let config = SystemConfig::new(5, 1).unwrap();
        assert!(NecessityScenario::build(config, 0.0, 0.1).is_err());
        assert!(NecessityScenario::build(config, 0.5, 0.0).is_err());
        assert!(NecessityScenario::build(config, f64::INFINITY, 0.1).is_err());
        let fault_free = SystemConfig::new(5, 0).unwrap();
        assert!(NecessityScenario::build(fault_free, 0.5, 0.1).is_err());
    }

    #[test]
    fn larger_f_scales_the_pull() {
        let config = SystemConfig::new(7, 2).unwrap();
        let s = NecessityScenario::build(config, 1.0, 0.5).unwrap();
        // pull = gap(n−f)/f = 1.5·5/2 = 3.75.
        assert!((s.centers()[s.scenario_one_honest()[3]] + 3.75).abs() < 1e-12);
        assert_eq!(s.core().len(), 3);
        assert_eq!(s.scenario_one_honest().len(), 5);
        assert_eq!(s.scenario_two_honest().len(), 5);
    }
}
