//! Possibly set-valued argmin representations and the distances of
//! Section 1.2.
//!
//! The paper's Definition 2 measures `dist(x̂, argmin Σ Q_i)` (point-to-set,
//! eq. 3) and Definition 3 the Euclidean Hausdorff distance between two
//! argmin sets (eq. 4). For the cost families in this workspace, argmin sets
//! take three shapes: a unique point (strongly convex aggregates), a closed
//! 1-D interval (median intervals of absolute-value costs), or a finite set
//! of candidates.

use crate::error::RedundancyError;
use abft_linalg::Vector;
use std::fmt;

/// A minimizer set `argmin_x Σ_{i∈S} Q_i(x)`.
#[derive(Debug, Clone, PartialEq)]
pub enum MinimizerSet {
    /// A unique minimizer (e.g. strongly convex aggregate costs).
    Point(Vector),
    /// A closed interval `[lo, hi] ⊂ ℝ` — the median intervals arising from
    /// scalar absolute-value costs.
    Interval {
        /// Left endpoint.
        lo: f64,
        /// Right endpoint (`lo ≤ hi`).
        hi: f64,
    },
    /// A finite set of minimizers.
    Finite(Vec<Vector>),
}

impl MinimizerSet {
    /// Creates an interval minimizer set.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either endpoint is non-finite.
    pub fn interval(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "interval requires lo <= hi");
        assert!(lo.is_finite() && hi.is_finite(), "interval must be bounded");
        MinimizerSet::Interval { lo, hi }
    }

    /// The ambient dimension of the set.
    pub fn dim(&self) -> usize {
        match self {
            MinimizerSet::Point(p) => p.dim(),
            MinimizerSet::Interval { .. } => 1,
            MinimizerSet::Finite(points) => points.first().map_or(0, |p| p.dim()),
        }
    }

    /// An arbitrary member of the set — the `x_T ∈ argmin` the exact
    /// algorithm picks in its Step 2.
    ///
    /// # Panics
    ///
    /// Panics on an empty [`MinimizerSet::Finite`].
    pub fn representative(&self) -> Vector {
        match self {
            MinimizerSet::Point(p) => p.clone(),
            MinimizerSet::Interval { lo, hi } => Vector::from(vec![0.5 * (lo + hi)]),
            MinimizerSet::Finite(points) => points
                .first()
                .expect("finite minimizer set must be non-empty")
                .clone(),
        }
    }

    /// Point-to-set distance `dist(x, X) = inf_{y∈X} ‖x − y‖` (eq. 3).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or an empty finite set.
    pub fn dist_to_point(&self, x: &Vector) -> f64 {
        match self {
            MinimizerSet::Point(p) => x.dist(p),
            MinimizerSet::Interval { lo, hi } => {
                assert_eq!(x.dim(), 1, "interval sets live in R");
                let v = x[0];
                if v < *lo {
                    lo - v
                } else if v > *hi {
                    v - hi
                } else {
                    0.0
                }
            }
            MinimizerSet::Finite(points) => points
                .iter()
                .map(|p| x.dist(p))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Euclidean Hausdorff distance between two minimizer sets (eq. 4).
    ///
    /// Supported combinations: point–point, point–finite, finite–finite in
    /// any dimension; interval–interval and interval–point in ℝ.
    ///
    /// # Errors
    ///
    /// Returns [`RedundancyError::IncomparableSets`] for unsupported
    /// combinations (e.g. an interval vs a finite multi-point set) and for
    /// dimension mismatches.
    pub fn hausdorff(&self, other: &MinimizerSet) -> Result<f64, RedundancyError> {
        use MinimizerSet::*;
        if self.dim() != other.dim() {
            return Err(RedundancyError::IncomparableSets {
                left: format!("{self}"),
                right: format!("{other}"),
            });
        }
        match (self, other) {
            (Point(a), Point(b)) => Ok(a.dist(b)),
            (Interval { lo: a, hi: b }, Interval { lo: c, hi: d }) => {
                // For closed intervals, the Hausdorff distance is the larger
                // endpoint displacement.
                Ok((a - c).abs().max((b - d).abs()))
            }
            (Point(p), Interval { lo, hi }) | (Interval { lo, hi }, Point(p)) => {
                // sup over the interval of the distance to p is attained at
                // an endpoint; dist(p, interval) ≤ that sup, so the sup is
                // the Hausdorff distance.
                let v = p[0];
                Ok((v - lo).abs().max((v - hi).abs()))
            }
            (Finite(_), Finite(_)) | (Point(_), Finite(_)) | (Finite(_), Point(_)) => {
                let left = self.as_point_cloud();
                let right = other.as_point_cloud();
                if left.is_empty() || right.is_empty() {
                    return Err(RedundancyError::EmptyFamily {
                        what: "finite minimizer set".to_string(),
                    });
                }
                Ok(hausdorff_finite(&left, &right))
            }
            _ => Err(RedundancyError::IncomparableSets {
                left: format!("{self}"),
                right: format!("{other}"),
            }),
        }
    }

    /// Materializes point-shaped variants as a point cloud (empty for
    /// intervals, which are not finite).
    fn as_point_cloud(&self) -> Vec<Vector> {
        match self {
            MinimizerSet::Point(p) => vec![p.clone()],
            MinimizerSet::Finite(points) => points.clone(),
            MinimizerSet::Interval { .. } => Vec::new(),
        }
    }
}

impl fmt::Display for MinimizerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizerSet::Point(p) => write!(f, "point {p}"),
            MinimizerSet::Interval { lo, hi } => write!(f, "interval [{lo:.6}, {hi:.6}]"),
            MinimizerSet::Finite(points) => write!(f, "finite set of {} points", points.len()),
        }
    }
}

/// Hausdorff distance between two non-empty finite point clouds.
fn hausdorff_finite(a: &[Vector], b: &[Vector]) -> f64 {
    let directed = |from: &[Vector], to: &[Vector]| {
        from.iter()
            .map(|x| to.iter().map(|y| x.dist(y)).fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max)
    };
    directed(a, b).max(directed(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point() {
        let a = MinimizerSet::Point(Vector::from(vec![0.0, 0.0]));
        let b = MinimizerSet::Point(Vector::from(vec![3.0, 4.0]));
        assert_eq!(a.hausdorff(&b).unwrap(), 5.0);
        assert_eq!(a.dist_to_point(&Vector::from(vec![3.0, 4.0])), 5.0);
    }

    #[test]
    fn interval_distances() {
        let i = MinimizerSet::interval(1.0, 3.0);
        assert_eq!(i.dist_to_point(&Vector::from(vec![0.0])), 1.0);
        assert_eq!(i.dist_to_point(&Vector::from(vec![2.0])), 0.0);
        assert_eq!(i.dist_to_point(&Vector::from(vec![5.0])), 2.0);
        let j = MinimizerSet::interval(2.0, 7.0);
        // max(|1−2|, |3−7|) = 4.
        assert_eq!(i.hausdorff(&j).unwrap(), 4.0);
        // Hausdorff axioms on intervals: identity and symmetry.
        assert_eq!(i.hausdorff(&i).unwrap(), 0.0);
        assert_eq!(j.hausdorff(&i).unwrap(), 4.0);
    }

    #[test]
    fn point_interval_mixed() {
        let i = MinimizerSet::interval(0.0, 2.0);
        let p = MinimizerSet::Point(Vector::from(vec![1.0]));
        // Point inside: Hausdorff = max distance to endpoints = 1.
        assert_eq!(i.hausdorff(&p).unwrap(), 1.0);
        assert_eq!(p.hausdorff(&i).unwrap(), 1.0);
        let far = MinimizerSet::Point(Vector::from(vec![5.0]));
        assert_eq!(i.hausdorff(&far).unwrap(), 5.0);
    }

    #[test]
    fn finite_sets() {
        let a = MinimizerSet::Finite(vec![Vector::from(vec![0.0]), Vector::from(vec![1.0])]);
        let b = MinimizerSet::Finite(vec![Vector::from(vec![0.0])]);
        // sup over a of dist to b = 1 (from the point 1); reverse = 0.
        assert_eq!(a.hausdorff(&b).unwrap(), 1.0);
        assert_eq!(a.dist_to_point(&Vector::from(vec![0.4])), 0.4);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = MinimizerSet::Point(Vector::zeros(2));
        let b = MinimizerSet::interval(0.0, 1.0);
        assert!(a.hausdorff(&b).is_err());
    }

    #[test]
    fn interval_vs_finite_is_unsupported() {
        let i = MinimizerSet::interval(0.0, 1.0);
        let s = MinimizerSet::Finite(vec![Vector::from(vec![0.5]), Vector::from(vec![0.7])]);
        assert!(matches!(
            i.hausdorff(&s),
            Err(RedundancyError::IncomparableSets { .. })
        ));
    }

    #[test]
    fn representatives_belong_to_their_sets() {
        let p = MinimizerSet::Point(Vector::from(vec![2.0, 3.0]));
        assert_eq!(p.dist_to_point(&p.representative()), 0.0);
        let i = MinimizerSet::interval(1.0, 5.0);
        assert_eq!(i.dist_to_point(&i.representative()), 0.0);
        let f = MinimizerSet::Finite(vec![Vector::from(vec![9.0])]);
        assert_eq!(f.dist_to_point(&f.representative()), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn malformed_interval_panics() {
        let _ = MinimizerSet::interval(2.0, 1.0);
    }

    #[test]
    fn degenerate_interval_is_a_point() {
        let i = MinimizerSet::interval(3.0, 3.0);
        let p = MinimizerSet::Point(Vector::from(vec![3.0]));
        assert_eq!(i.hausdorff(&p).unwrap(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert!(MinimizerSet::interval(0.0, 1.0)
            .to_string()
            .contains("interval"));
        assert!(MinimizerSet::Point(Vector::zeros(1))
            .to_string()
            .contains("point"));
        assert!(MinimizerSet::Finite(vec![Vector::zeros(1)])
            .to_string()
            .contains("1 points"));
    }
}
