//! Measuring the `(2f, ε)`-redundancy of a concrete instance
//! (Definition 3, following the Appendix-J procedure).

use crate::error::RedundancyError;
use crate::minset::MinimizerSet;
use abft_core::subsets::{k_subsets_of, KSubsets};
use abft_core::SystemConfig;
use abft_linalg::Vector;
use abft_problems::absval::median_interval;
use abft_problems::RegressionProblem;

/// Anything that can produce the minimizer set of a subset aggregate
/// `argmin Σ_{i∈S} Q_i(x)`.
///
/// This is the interface between the theory code (which only manipulates
/// argmin sets) and concrete cost families.
pub trait MinimizerOracle {
    /// Number of agents.
    fn n(&self) -> usize;

    /// Decision dimension.
    fn dim(&self) -> usize;

    /// The minimizer set of `Σ_{i∈subset} Q_i`.
    ///
    /// # Errors
    ///
    /// Implementations may fail when the subset aggregate has no unique /
    /// computable minimizer representation.
    fn argmin(&self, subset: &[usize]) -> Result<MinimizerSet, RedundancyError>;
}

/// Oracle over a [`RegressionProblem`]: minimizers are unique points
/// computed by least squares (Appendix J, eq. 137).
#[derive(Debug, Clone, Copy)]
pub struct RegressionOracle<'a> {
    problem: &'a RegressionProblem,
}

impl<'a> RegressionOracle<'a> {
    /// Wraps a regression problem.
    pub fn new(problem: &'a RegressionProblem) -> Self {
        RegressionOracle { problem }
    }
}

impl MinimizerOracle for RegressionOracle<'_> {
    fn n(&self) -> usize {
        self.problem.config().n()
    }

    fn dim(&self) -> usize {
        self.problem.dim()
    }

    fn argmin(&self, subset: &[usize]) -> Result<MinimizerSet, RedundancyError> {
        Ok(MinimizerSet::Point(self.problem.subset_minimizer(subset)?))
    }
}

/// Oracle over scalar absolute-value costs `Q_i(x) = |x − c_i|`: minimizer
/// sets are median *intervals* — the non-differentiable, set-valued case the
/// paper's Theorems 1–2 cover.
#[derive(Debug, Clone)]
pub struct MedianOracle {
    centers: Vec<f64>,
}

impl MedianOracle {
    /// Creates the oracle from the agents' centers.
    pub fn new(centers: Vec<f64>) -> Self {
        MedianOracle { centers }
    }
}

impl MinimizerOracle for MedianOracle {
    fn n(&self) -> usize {
        self.centers.len()
    }

    fn dim(&self) -> usize {
        1
    }

    fn argmin(&self, subset: &[usize]) -> Result<MinimizerSet, RedundancyError> {
        if subset.is_empty() {
            return Err(RedundancyError::EmptyFamily {
                what: "subset for median oracle".to_string(),
            });
        }
        let selected: Vec<f64> = subset.iter().map(|&i| self.centers[i]).collect();
        let (lo, hi) = median_interval(&selected);
        Ok(MinimizerSet::interval(lo, hi))
    }
}

/// The result of measuring `(2f, ε)`-redundancy.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyReport {
    /// The measured `ε`: the largest Hausdorff distance over all `(S, Ŝ)`
    /// pairs of Definition 3.
    pub epsilon: f64,
    /// The outer subset `S` (size `n − f`) achieving the maximum.
    pub worst_outer: Vec<usize>,
    /// The inner subset `Ŝ ⊂ S` (size `n − 2f`) achieving the maximum.
    pub worst_inner: Vec<usize>,
    /// Number of `(S, Ŝ)` pairs examined.
    pub pairs_examined: usize,
}

/// Measures the `(2f, ε)`-redundancy of an instance: the maximum Hausdorff
/// distance `dist(argmin Σ_S, argmin Σ_Ŝ)` over all `S` with `|S| = n − f`
/// and `Ŝ ⊆ S` with `|Ŝ| = n − 2f` (Definition 3).
///
/// By Definition 3 the instance satisfies `(2f, ε′)`-redundancy for every
/// `ε′ ≥` the returned `epsilon`, and for none smaller.
///
/// # Errors
///
/// Propagates oracle failures and returns
/// [`RedundancyError::InvalidInput`] when the oracle's agent count differs
/// from `config.n()`.
pub fn measure_redundancy(
    oracle: &dyn MinimizerOracle,
    config: SystemConfig,
) -> Result<RedundancyReport, RedundancyError> {
    if oracle.n() != config.n() {
        return Err(RedundancyError::InvalidInput {
            reason: format!(
                "oracle has {} agents but config says {}",
                oracle.n(),
                config.n()
            ),
        });
    }
    let n = config.n();
    let outer_size = config.honest_quorum();
    let inner_size = config.redundancy_quorum();

    let mut epsilon: f64 = 0.0;
    let mut worst_outer = Vec::new();
    let mut worst_inner = Vec::new();
    let mut pairs_examined = 0usize;

    for outer in KSubsets::new(n, outer_size) {
        let outer_set = oracle.argmin(&outer)?;
        for inner in k_subsets_of(&outer, inner_size) {
            let inner_set = oracle.argmin(&inner)?;
            let d = outer_set.hausdorff(&inner_set)?;
            pairs_examined += 1;
            if d > epsilon {
                epsilon = d;
                worst_outer = outer.clone();
                worst_inner = inner;
            }
        }
    }
    if pairs_examined == 0 {
        return Err(RedundancyError::EmptyFamily {
            what: "(S, S-hat) redundancy pairs".to_string(),
        });
    }
    Ok(RedundancyReport {
        epsilon,
        worst_outer,
        worst_inner,
        pairs_examined,
    })
}

/// The largest norm of a `q`-subset sum: `max_{|S| = q} ‖Σ_{i∈S} vᵢ‖`.
///
/// This is the quantity `r` in the paper's Lemma 3, which asserts that if
/// every `q`-subset sum has norm at most `r` (with `q ≤ p/2`), then every
/// individual vector has norm at most `2r`. The property test in this
/// crate's test suite checks that implication on random data.
///
/// # Panics
///
/// Panics when `q > vectors.len()` or `q == 0`.
pub fn max_subset_sum_norm(vectors: &[Vector], q: usize) -> f64 {
    assert!(q > 0 && q <= vectors.len(), "require 0 < q <= p");
    let mut worst: f64 = 0.0;
    for subset in KSubsets::new(vectors.len(), q) {
        let mut acc = Vector::zeros(vectors[0].dim());
        for &i in &subset {
            acc += &vectors[i];
        }
        worst = worst.max(acc.norm());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_epsilon_matches_reported_value() {
        let problem = RegressionProblem::paper_instance();
        let oracle = RegressionOracle::new(&problem);
        let report = measure_redundancy(&oracle, *problem.config()).unwrap();
        assert!(
            (report.epsilon - 0.0890).abs() < 5e-4,
            "epsilon = {} vs paper 0.0890",
            report.epsilon
        );
        // C(6,5) outer sets × C(5,4) inner sets = 6 × 5 = 30 pairs.
        assert_eq!(report.pairs_examined, 30);
        assert_eq!(report.worst_outer.len(), 5);
        assert_eq!(report.worst_inner.len(), 4);
    }

    #[test]
    fn noiseless_instance_has_zero_epsilon() {
        // 2f-redundancy by construction: exact recovery from every quorum.
        let config = SystemConfig::new(7, 2).unwrap();
        let x_star = Vector::from(vec![1.0, -1.0]);
        let problem = RegressionProblem::random(config, 2, &x_star, 0.0, 21).unwrap();
        let oracle = RegressionOracle::new(&problem);
        let report = measure_redundancy(&oracle, config).unwrap();
        assert!(report.epsilon < 1e-7, "epsilon = {}", report.epsilon);
    }

    #[test]
    fn epsilon_grows_with_noise() {
        let config = SystemConfig::new(7, 2).unwrap();
        let x_star = Vector::from(vec![1.0, -1.0]);
        let quiet = RegressionProblem::random(config, 2, &x_star, 0.01, 5).unwrap();
        let noisy = RegressionProblem::random(config, 2, &x_star, 0.5, 5).unwrap();
        let eps_quiet = measure_redundancy(&RegressionOracle::new(&quiet), config)
            .unwrap()
            .epsilon;
        let eps_noisy = measure_redundancy(&RegressionOracle::new(&noisy), config)
            .unwrap()
            .epsilon;
        assert!(
            eps_noisy > eps_quiet,
            "noise 0.5 gave eps {eps_noisy} <= noise 0.01 eps {eps_quiet}"
        );
    }

    #[test]
    fn median_oracle_measures_interval_redundancy() {
        // Centers clustered at 0 except one at 10; n = 5, f = 1.
        let oracle = MedianOracle::new(vec![0.0, 0.0, 0.1, -0.1, 10.0]);
        let config = SystemConfig::new(5, 1).unwrap();
        let report = measure_redundancy(&oracle, config).unwrap();
        // Dropping different agents shifts the median interval by a bounded
        // amount; epsilon must be positive but far less than the outlier gap.
        assert!(report.epsilon > 0.0);
        assert!(report.epsilon < 10.0);
    }

    #[test]
    fn oracle_config_mismatch_is_rejected() {
        let oracle = MedianOracle::new(vec![0.0, 1.0, 2.0]);
        let config = SystemConfig::new(5, 1).unwrap();
        assert!(matches!(
            measure_redundancy(&oracle, config),
            Err(RedundancyError::InvalidInput { .. })
        ));
    }

    #[test]
    fn median_oracle_argmin_shapes() {
        let oracle = MedianOracle::new(vec![1.0, 2.0, 3.0, 4.0]);
        // Odd subset: a point-like degenerate interval.
        match oracle.argmin(&[0, 1, 2]).unwrap() {
            MinimizerSet::Interval { lo, hi } => assert_eq!((lo, hi), (2.0, 2.0)),
            other => panic!("expected interval, got {other}"),
        }
        // Even subset: a true interval.
        match oracle.argmin(&[0, 1, 2, 3]).unwrap() {
            MinimizerSet::Interval { lo, hi } => assert_eq!((lo, hi), (2.0, 3.0)),
            other => panic!("expected interval, got {other}"),
        }
        assert!(oracle.argmin(&[]).is_err());
    }

    #[test]
    fn subset_sum_norm_basics() {
        let vs = vec![
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![-1.0, 0.0]),
            Vector::from(vec![0.0, 2.0]),
        ];
        // q = 1: the largest single norm.
        assert_eq!(max_subset_sum_norm(&vs, 1), 2.0);
        // q = 2: the largest pair sum is (0,2)+(±1,0) with norm √5.
        assert!((max_subset_sum_norm(&vs, 2) - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "0 < q <= p")]
    fn subset_sum_norm_validates_q() {
        let _ = max_subset_sum_norm(&[Vector::zeros(1)], 2);
    }
}
