//! Executable theory: redundancy measurement, the exact resilient algorithm,
//! and resilience bounds.
//!
//! This crate turns Section 3 of the paper into running code:
//!
//! * [`minset::MinimizerSet`] — possibly set-valued argmins with point-to-set
//!   and Hausdorff distances (eqs. 3–4);
//! * [`measure`] — the `(2f, ε)`-redundancy measurement of Definition 3,
//!   following the Appendix-J procedure that yields `ε = 0.0890` for the
//!   paper's regression instance;
//! * [`exact`] — the constructive `(f, 2ε)`-resilient algorithm from the
//!   proof of Theorem 2 (subset enumeration; deliberately expensive);
//! * [`necessity`] — the Theorem 1 counterexample generator, an executable
//!   impossibility witness;
//! * [`bounds`] — the resilience factors of Theorems 4, 5 and 6
//!   (`D = 4µf/(αγ)` for CGE, the sharper Theorem 5 variant, and
//!   `D′ = 2√d·nµλ/(γ−√dµλ)` for CWTM).
//!
//! # Example
//!
//! ```
//! use abft_problems::RegressionProblem;
//! use abft_redundancy::{measure_redundancy, RegressionOracle};
//!
//! # fn main() -> Result<(), abft_redundancy::RedundancyError> {
//! let problem = RegressionProblem::paper_instance();
//! let oracle = RegressionOracle::new(&problem);
//! let report = measure_redundancy(&oracle, *problem.config())?;
//! // The paper's Section 5: ε = 0.0890.
//! assert!((report.epsilon - 0.0890).abs() < 5e-4);
//! # Ok(())
//! # }
//! ```

pub mod bounds;
pub mod error;
pub mod exact;
pub mod measure;
pub mod minset;
pub mod necessity;

pub use bounds::{
    cge_alpha, cge_resilience_factor, cge_v2_alpha, cge_v2_resilience_factor,
    cwtm_lambda_threshold, cwtm_resilience_factor, max_tolerable_f_cge,
};
pub use error::RedundancyError;
pub use exact::{exact_resilient_output, ExactOutput};
pub use measure::{
    max_subset_sum_norm, measure_redundancy, MedianOracle, MinimizerOracle, RedundancyReport,
    RegressionOracle,
};
pub use minset::MinimizerSet;
pub use necessity::NecessityScenario;

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::bounds::{cge_alpha, cge_resilience_factor, cwtm_resilience_factor};
    pub use crate::error::RedundancyError;
    pub use crate::exact::{exact_resilient_output, ExactOutput};
    pub use crate::measure::{
        measure_redundancy, MinimizerOracle, RedundancyReport, RegressionOracle,
    };
    pub use crate::minset::MinimizerSet;
}
