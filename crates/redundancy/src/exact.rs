//! The constructive `(f, 2ε)`-resilient algorithm from the proof of
//! Theorem 2.
//!
//! Given the full cost functions of all `n` agents (honest ones send their
//! true costs, Byzantine ones arbitrary costs), the algorithm:
//!
//! 1. for each candidate set `T` with `|T| = n − f`, picks
//!    `x_T ∈ argmin Σ_{i∈T} Q_i` and computes
//!    `r_T = max_{T̂ ⊂ T, |T̂| = n − 2f} dist(x_T, argmin Σ_{i∈T̂} Q_i)`;
//! 2. outputs `x_S` for the `S` minimizing `r_S`.
//!
//! Under `(2f, ε)`-redundancy of the honest costs, Theorem 2 proves the
//! output is within `2ε` of a minimizer of *every* `(n − f)`-subset of
//! honest agents — regardless of what the Byzantine agents submitted.
//!
//! The enumeration is `C(n, f)` outer × `C(n−f, f)` inner subsets: the
//! combinatorial cost the paper concedes makes the algorithm "not very
//! practical". The `exact_algorithm` bench quantifies that blow-up.

use crate::error::RedundancyError;
use crate::measure::MinimizerOracle;
use abft_core::subsets::{k_subsets_of, KSubsets};
use abft_core::SystemConfig;
use abft_linalg::Vector;

/// The output of the exact algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactOutput {
    /// The chosen point `x_S`.
    pub output: Vector,
    /// The winning candidate set `S`.
    pub chosen_subset: Vec<usize>,
    /// Its score `r_S` (eq. 11). Under `(2f, ε)`-redundancy of the honest
    /// costs, `r_S ≤ ε` (eq. 16).
    pub score: f64,
    /// Every candidate's `(T, r_T)` pair, for diagnostics.
    pub all_scores: Vec<(Vec<usize>, f64)>,
}

/// Runs the exact algorithm of Theorem 2 over the submitted costs.
///
/// # Errors
///
/// Propagates oracle failures; returns [`RedundancyError::InvalidInput`]
/// when the oracle disagrees with `config` and
/// [`RedundancyError::EmptyFamily`] when no candidate subsets exist.
pub fn exact_resilient_output(
    oracle: &dyn MinimizerOracle,
    config: SystemConfig,
) -> Result<ExactOutput, RedundancyError> {
    if oracle.n() != config.n() {
        return Err(RedundancyError::InvalidInput {
            reason: format!(
                "oracle has {} agents but config says {}",
                oracle.n(),
                config.n()
            ),
        });
    }
    let n = config.n();
    let outer_size = config.honest_quorum();
    let inner_size = config.redundancy_quorum();

    let mut best: Option<(Vec<usize>, Vector, f64)> = None;
    let mut all_scores = Vec::new();

    for candidate in KSubsets::new(n, outer_size) {
        // Step 2: x_T ∈ argmin Σ_{i∈T} Q_i.
        let x_t = oracle.argmin(&candidate)?.representative();
        // r_T = max over T̂ ⊂ T of dist(x_T, argmin Σ_{T̂}).
        let mut r_t: f64 = 0.0;
        for inner in k_subsets_of(&candidate, inner_size) {
            let inner_set = oracle.argmin(&inner)?;
            r_t = r_t.max(inner_set.dist_to_point(&x_t));
        }
        all_scores.push((candidate.clone(), r_t));
        let better = match &best {
            None => true,
            Some((_, _, best_score)) => r_t < *best_score,
        };
        if better {
            best = Some((candidate, x_t, r_t));
        }
    }

    let (chosen_subset, output, score) = best.ok_or(RedundancyError::EmptyFamily {
        what: "candidate (n-f)-subsets".to_string(),
    })?;
    Ok(ExactOutput {
        output,
        chosen_subset,
        score,
        all_scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure_redundancy, MedianOracle, RegressionOracle};
    use abft_problems::RegressionProblem;

    #[test]
    fn fault_free_instance_returns_global_minimizer() {
        // With f = 0 there is one candidate (everyone) and r = 0 trivially
        // relative to itself only if inner == outer; here inner size = n.
        let problem = RegressionProblem::paper_instance();
        let cfg0 = abft_core::SystemConfig::new(6, 0).unwrap();
        let p0 = RegressionProblem::new(
            cfg0,
            problem.matrix().clone(),
            problem.observations().clone(),
        )
        .unwrap();
        let oracle = RegressionOracle::new(&p0);
        let out = exact_resilient_output(&oracle, cfg0).unwrap();
        let global = p0.subset_minimizer(&[0, 1, 2, 3, 4, 5]).unwrap();
        assert!(out.output.approx_eq(&global, 1e-9));
        assert!(out.score < 1e-9);
    }

    #[test]
    fn theorem_2_guarantee_on_paper_instance() {
        // Submit the paper's costs as-is (all "honest"): the output must be
        // within 2ε of every (n−f)-honest-subset minimizer.
        let problem = RegressionProblem::paper_instance();
        let config = *problem.config();
        let oracle = RegressionOracle::new(&problem);
        let eps = measure_redundancy(&oracle, config).unwrap().epsilon;
        let out = exact_resilient_output(&oracle, config).unwrap();
        assert!(out.score <= eps + 1e-9, "r_S = {} > eps = {eps}", out.score);
        for subset in abft_core::subsets::KSubsets::new(6, 5) {
            let x_s = problem.subset_minimizer(&subset).unwrap();
            let d = out.output.dist(&x_s);
            assert!(
                d <= 2.0 * eps + 1e-9,
                "output {} is {d} from subset {subset:?} minimizer (2eps = {})",
                out.output,
                2.0 * eps
            );
        }
    }

    #[test]
    fn byzantine_costs_cannot_break_the_guarantee() {
        // Corrupt agent 0's data wildly; honest agents are 1..=5. The output
        // must stay within 2ε of every honest-subset minimizer, where ε is
        // measured over the honest costs only.
        let honest = RegressionProblem::paper_instance();
        let config = *honest.config();

        let mut corrupted_matrix = honest.matrix().clone();
        corrupted_matrix.set(0, 0, 3.0);
        corrupted_matrix.set(0, 1, -5.0);
        let mut corrupted_obs = honest.observations().clone();
        corrupted_obs[0] = 1e4;
        let submitted = RegressionProblem::new(config, corrupted_matrix, corrupted_obs).unwrap();

        // ε of the honest instance (the guarantee's premise).
        let eps = measure_redundancy(&RegressionOracle::new(&honest), config)
            .unwrap()
            .epsilon;

        let out = exact_resilient_output(&RegressionOracle::new(&submitted), config).unwrap();

        // The only all-honest (n−f)-subset is {1,…,5}.
        let x_h = honest.subset_minimizer(&[1, 2, 3, 4, 5]).unwrap();
        let d = out.output.dist(&x_h);
        assert!(
            d <= 2.0 * eps + 1e-9,
            "Byzantine data pushed output {d} away (2eps = {})",
            2.0 * eps
        );
    }

    #[test]
    fn score_table_is_complete() {
        let problem = RegressionProblem::paper_instance();
        let oracle = RegressionOracle::new(&problem);
        let out = exact_resilient_output(&oracle, *problem.config()).unwrap();
        assert_eq!(out.all_scores.len(), 6); // C(6,5)
        assert_eq!(out.chosen_subset.len(), 5);
        // The chosen score is the minimum of the table.
        let min_score = out
            .all_scores
            .iter()
            .map(|(_, r)| *r)
            .fold(f64::INFINITY, f64::min);
        assert!((out.score - min_score).abs() < 1e-15);
    }

    #[test]
    fn works_with_set_valued_minimizers() {
        // Non-differentiable absolute-value costs: minimizers are intervals.
        // n = 5, f = 1; centers clustered around 1.
        let oracle = MedianOracle::new(vec![0.9, 1.0, 1.1, 1.05, 0.95]);
        let config = abft_core::SystemConfig::new(5, 1).unwrap();
        let out = exact_resilient_output(&oracle, config).unwrap();
        // Output is near the cluster.
        assert!((out.output[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn rejects_mismatched_oracle() {
        let oracle = MedianOracle::new(vec![0.0; 4]);
        let config = abft_core::SystemConfig::new(5, 1).unwrap();
        assert!(exact_resilient_output(&oracle, config).is_err());
    }
}
