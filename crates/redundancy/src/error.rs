//! Error type for the redundancy/theory crate.

use abft_problems::ProblemError;
use std::fmt;

/// Errors produced by redundancy measurement and the exact algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum RedundancyError {
    /// An underlying problem/minimization operation failed.
    Problem(ProblemError),
    /// A Hausdorff distance was requested between set representations the
    /// implementation cannot compare (e.g. an interval vs a 2-D point).
    IncomparableSets {
        /// Description of the left-hand set.
        left: String,
        /// Description of the right-hand set.
        right: String,
    },
    /// A subset family was empty where at least one member was required.
    EmptyFamily {
        /// What was being enumerated.
        what: String,
    },
    /// The configuration does not admit the requested computation.
    InvalidInput {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for RedundancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedundancyError::Problem(e) => write!(f, "problem failure: {e}"),
            RedundancyError::IncomparableSets { left, right } => {
                write!(f, "cannot compare minimizer sets: {left} vs {right}")
            }
            RedundancyError::EmptyFamily { what } => {
                write!(f, "empty subset family while enumerating {what}")
            }
            RedundancyError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for RedundancyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RedundancyError::Problem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProblemError> for RedundancyError {
    fn from(e: ProblemError) -> Self {
        RedundancyError::Problem(e)
    }
}

impl From<abft_linalg::LinalgError> for RedundancyError {
    fn from(e: abft_linalg::LinalgError) -> Self {
        RedundancyError::Problem(ProblemError::Linalg(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e = RedundancyError::from(ProblemError::Shape {
            expected: "x".into(),
            actual: "y".into(),
        });
        assert!(matches!(e, RedundancyError::Problem(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e = RedundancyError::IncomparableSets {
            left: "interval".into(),
            right: "point(2)".into(),
        };
        assert!(e.to_string().contains("interval"));
    }
}
