//! Property-based tests for the linear-algebra substrate.

use abft_linalg::{
    cholesky, determinant, inverse, least_squares, solve, solve_spd, sym_eigenvalues, Matrix,
    Vector,
};
use proptest::prelude::*;

/// Strategy: a small vector with bounded, well-conditioned entries.
fn vec_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, dim)
}

/// Strategy: a diagonally dominant (hence invertible) square matrix.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |mut data| {
        for i in 0..n {
            // Make row i dominant: |a_ii| > sum of |a_ij|.
            let row_sum: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| data[i * n + j].abs())
                .sum();
            data[i * n + i] = row_sum + 1.0;
        }
        Matrix::new(n, n, data).expect("shape is consistent")
    })
}

/// Strategy: a symmetric positive-definite matrix built as BᵀB + I.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = Matrix::new(n, n, data).expect("shape is consistent");
        b.gram().add(&Matrix::identity(n)).expect("same shape")
    })
}

proptest! {
    #[test]
    fn vector_addition_commutes(a in vec_strategy(5), b in vec_strategy(5)) {
        let x = Vector::from(a);
        let y = Vector::from(b);
        prop_assert!((&x + &y).approx_eq(&(&y + &x), 1e-12));
    }

    #[test]
    fn triangle_inequality(a in vec_strategy(4), b in vec_strategy(4)) {
        let x = Vector::from(a);
        let y = Vector::from(b);
        prop_assert!((&x + &y).norm() <= x.norm() + y.norm() + 1e-9);
    }

    #[test]
    fn cauchy_schwarz(a in vec_strategy(6), b in vec_strategy(6)) {
        let x = Vector::from(a);
        let y = Vector::from(b);
        prop_assert!(x.dot(&y).abs() <= x.norm() * y.norm() + 1e-9);
    }

    #[test]
    fn scaling_scales_norm(a in vec_strategy(4), c in -5.0..5.0f64) {
        let x = Vector::from(a);
        prop_assert!((x.scale(c).norm() - c.abs() * x.norm()).abs() < 1e-9);
    }

    #[test]
    fn solve_then_multiply_recovers_rhs(m in dominant_matrix(4), b in vec_strategy(4)) {
        let rhs = Vector::from(b);
        let x = solve(&m, &rhs).expect("dominant matrices are invertible");
        let back = m.matvec(&x).expect("square");
        prop_assert!(back.approx_eq(&rhs, 1e-6));
    }

    #[test]
    fn inverse_multiplies_to_identity(m in dominant_matrix(3)) {
        let inv = inverse(&m).expect("dominant matrices are invertible");
        let prod = m.matmul(&inv).expect("square");
        prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-6));
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        a in dominant_matrix(3),
        b in dominant_matrix(3),
    ) {
        let da = determinant(&a).expect("square");
        let db = determinant(&b).expect("square");
        let dab = determinant(&a.matmul(&b).expect("square")).expect("square");
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn cholesky_reconstructs_spd(m in spd_matrix(4)) {
        let l = cholesky(&m).expect("SPD by construction");
        let back = l.matmul(&l.transpose()).expect("square");
        prop_assert!(back.approx_eq(&m, 1e-8));
    }

    #[test]
    fn spd_solve_agrees_with_general_solve(m in spd_matrix(3), b in vec_strategy(3)) {
        let rhs = Vector::from(b);
        let x1 = solve(&m, &rhs).expect("SPD is invertible");
        let x2 = solve_spd(&m, &rhs).expect("SPD");
        prop_assert!(x1.approx_eq(&x2, 1e-7));
    }

    #[test]
    fn eigenvalues_sum_to_trace(m in spd_matrix(4)) {
        let eig = sym_eigenvalues(&m).expect("symmetric");
        let sum: f64 = eig.values.iter().sum();
        let trace = m.trace().expect("square");
        prop_assert!((sum - trace).abs() < 1e-8 * trace.abs().max(1.0));
        // SPD: all eigenvalues strictly positive.
        prop_assert!(eig.min() > 0.0);
    }

    #[test]
    fn eigenvalue_product_matches_determinant(m in spd_matrix(3)) {
        let eig = sym_eigenvalues(&m).expect("symmetric");
        let prod: f64 = eig.values.iter().product();
        let det = determinant(&m).expect("square");
        prop_assert!((prod - det).abs() < 1e-6 * det.abs().max(1.0));
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns(
        data in prop::collection::vec(-5.0..5.0f64, 6 * 2),
        b in vec_strategy(6),
    ) {
        let a = Matrix::new(6, 2, data).expect("shape");
        // Skip (rare) rank-deficient draws.
        if abft_linalg::solve::rank(&a, 1e-8).expect("tall matrix") < 2 {
            return Ok(());
        }
        let rhs = Vector::from(b);
        let x = least_squares(&a, &rhs).expect("full rank");
        // Normal equations: Aᵀ(Ax − b) = 0.
        let residual = &a.matvec(&x).expect("shape") - &rhs;
        let atr = a.matvec_t(&residual).expect("shape");
        prop_assert!(atr.norm() < 1e-6, "A^T r = {atr:?}");
    }

    #[test]
    fn matmul_is_associative(
        a in dominant_matrix(3),
        b in dominant_matrix(3),
        c in dominant_matrix(3),
    ) {
        let left = a.matmul(&b).expect("square").matmul(&c).expect("square");
        let right = a.matmul(&b.matmul(&c).expect("square")).expect("square");
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn transpose_reverses_products(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let lhs = a.matmul(&b).expect("square").transpose();
        let rhs = b.transpose().matmul(&a.transpose()).expect("square");
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn trimmed_mean_bounded_by_extremes(
        mut xs in prop::collection::vec(-100.0..100.0f64, 5..20),
        trim in 0usize..2,
    ) {
        if xs.len() <= 2 * trim { return Ok(()); }
        let tm = abft_linalg::stats::trimmed_mean(&xs, trim).expect("non-empty");
        xs.sort_by(|a, b| a.total_cmp(b));
        prop_assert!(tm >= xs[0] - 1e-12 && tm <= xs[xs.len() - 1] + 1e-12);
    }

    #[test]
    fn median_minimizes_l1(xs in prop::collection::vec(-50.0..50.0f64, 1..15)) {
        let med = abft_linalg::stats::median(&xs).expect("non-empty");
        let cost = |c: f64| xs.iter().map(|x| (x - c).abs()).sum::<f64>();
        let at_median = cost(med);
        // The median minimizes sum of absolute deviations; probe nearby points.
        for delta in [-1.0, -0.1, 0.1, 1.0] {
            prop_assert!(at_median <= cost(med + delta) + 1e-9);
        }
    }
}
