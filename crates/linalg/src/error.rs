//! Error type for linear-algebra operations.

use std::fmt;

/// Errors produced by the linear-algebra substrate.
///
/// (`PartialEq` only: [`LinalgError::InvalidQuantile`] carries the
/// offending `f64`.)
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    Dimension {
        /// The shape the operation required.
        expected: String,
        /// The shape that was supplied.
        actual: String,
    },
    /// The matrix is singular (or numerically rank-deficient) where an
    /// invertible one was required.
    Singular,
    /// The matrix is not symmetric positive definite where SPD was required
    /// (Cholesky, SPD solves).
    NotPositiveDefinite,
    /// A square matrix was required.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// An operation that requires at least one element received none.
    Empty,
    /// A quantile was requested outside `[0, 1]` (NaN included). Returned
    /// as a value instead of asserting so an adversarial or miscomputed
    /// `q` can never abort an aggregation server.
    InvalidQuantile {
        /// The offending quantile.
        q: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the method that failed.
        method: &'static str,
        /// Iterations attempted.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Dimension { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty operand"),
            LinalgError::InvalidQuantile { q } => {
                write!(f, "quantile requires q in [0, 1], got {q}")
            }
            LinalgError::NoConvergence { method, iterations } => {
                write!(
                    f,
                    "{method} did not converge within {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::Dimension {
            expected: "3x3".into(),
            actual: "2x3".into(),
        };
        assert!(e.to_string().contains("expected 3x3"));
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NotSquare { rows: 2, cols: 3 }
            .to_string()
            .contains("2x3"));
        assert!(LinalgError::NoConvergence {
            method: "jacobi",
            iterations: 100
        }
        .to_string()
        .contains("jacobi"));
        assert!(LinalgError::InvalidQuantile { q: 1.5 }
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<LinalgError>();
    }
}
