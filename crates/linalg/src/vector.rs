//! Dense `f64` vectors.

use crate::error::LinalgError;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense vector of `f64` values.
///
/// This is the workhorse type of the workspace: estimates `x_t`, gradients
/// `g_i^t`, and filter outputs are all `Vector`s. Arithmetic is provided for
/// both owned values and references so hot loops can avoid clones.
///
/// # Example
///
/// ```
/// use abft_linalg::Vector;
///
/// let x = Vector::from(vec![3.0, 4.0]);
/// let y = Vector::from(vec![1.0, 1.0]);
/// assert_eq!(x.norm(), 5.0);
/// assert_eq!((&x - &y).as_slice(), &[2.0, 3.0]);
/// assert_eq!(x.dot(&y), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from raw data.
    pub fn new(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// The zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector {
            data: vec![0.0; dim],
        }
    }

    /// The all-ones vector of dimension `dim`.
    pub fn ones(dim: usize) -> Self {
        Vector {
            data: vec![1.0; dim],
        }
    }

    /// Builds a vector by evaluating `f` at each index.
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..dim).map(&mut f).collect(),
        }
    }

    /// The `i`-th standard basis vector in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn basis(dim: usize, i: usize) -> Self {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < dim, "basis index {i} out of range for dimension {dim}");
        let mut v = Self::zeros(dim);
        v.data[i] = 1.0;
        v
    }

    /// Dimension (number of entries).
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning its backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Inner product `⟨self, other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ; use [`Vector::checked_dot`] for a
    /// fallible variant.
    pub fn dot(&self, other: &Vector) -> f64 {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product requires equal dimensions"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Inner product with dimension checking.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] when dimensions differ.
    pub fn checked_dot(&self, other: &Vector) -> Result<f64, LinalgError> {
        if self.dim() != other.dim() {
            return Err(LinalgError::Dimension {
                expected: format!("dim {}", self.dim()),
                actual: format!("dim {}", other.dim()),
            });
        }
        Ok(self.dot(other))
    }

    /// Squared Euclidean norm `‖self‖²`.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Euclidean norm `‖self‖` — the norm used throughout the paper.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Infinity norm `max_i |self[i]|`.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, a| m.max(a.abs()))
    }

    /// Euclidean distance `‖self − other‖`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dist(&self, other: &Vector) -> f64 {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert_eq!(
            self.dim(),
            other.dim(),
            "distance requires equal dimensions"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Returns `self` scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|a| a * factor).collect(),
        }
    }

    /// Scales in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Adds `factor * other` in place (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn axpy(&mut self, factor: f64, other: &Vector) {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert_eq!(self.dim(), other.dim(), "axpy requires equal dimensions");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert_eq!(
            self.dim(),
            other.dim(),
            "hadamard requires equal dimensions"
        );
        Vector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Element-wise clamp of every entry into `[lo, hi]` — the projection
    /// onto the axis-aligned box `[lo, hi]^d` used as the compact set `W` in
    /// the paper's update rule (21).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_box(&self, lo: f64, hi: f64) -> Vector {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(lo <= hi, "clamp_box requires lo <= hi");
        Vector {
            data: self.data.iter().map(|a| a.clamp(lo, hi)).collect(),
        }
    }

    /// In-place variant of [`Vector::clamp_box`] for allocation-free
    /// projection in the DGD hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_box_mut(&mut self, lo: f64, hi: f64) {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(lo <= hi, "clamp_box requires lo <= hi");
        for a in &mut self.data {
            *a = a.clamp(lo, hi);
        }
    }

    /// Returns a unit vector in the direction of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for the zero vector.
    pub fn normalized(&self) -> Result<Vector, LinalgError> {
        let n = self.norm();
        if n == 0.0 {
            return Err(LinalgError::Singular);
        }
        Ok(self.scale(1.0 / n))
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of entries.
    ///
    /// # Panics
    ///
    /// Panics on the empty vector.
    pub fn mean(&self) -> f64 {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(!self.is_empty(), "mean of empty vector");
        self.sum() / self.dim() as f64
    }

    /// `true` when every entry differs from `other`'s by at most `tol`.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }

    /// Mean of a non-empty collection of equal-dimension vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `vectors` is empty and
    /// [`LinalgError::Dimension`] when dimensions are inconsistent.
    pub fn mean_of(vectors: &[Vector]) -> Result<Vector, LinalgError> {
        let mut sum = Self::sum_of(vectors)?;
        sum.scale_mut(1.0 / vectors.len() as f64);
        Ok(sum)
    }

    /// Sum of a non-empty collection of equal-dimension vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `vectors` is empty and
    /// [`LinalgError::Dimension`] when dimensions are inconsistent.
    pub fn sum_of(vectors: &[Vector]) -> Result<Vector, LinalgError> {
        let first = vectors.first().ok_or(LinalgError::Empty)?;
        let mut acc = Vector::zeros(first.dim());
        for v in vectors {
            if v.dim() != first.dim() {
                return Err(LinalgError::Dimension {
                    expected: format!("dim {}", first.dim()),
                    actual: format!("dim {}", v.dim()),
                });
            }
            acc.axpy(1.0, v);
        }
        Ok(acc)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a:.6}")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_binary_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Vector> for &Vector {
            type Output = Vector;
            fn $method(self, rhs: &Vector) -> Vector {
                // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
                assert_eq!(
                    self.dim(),
                    rhs.dim(),
                    concat!(stringify!($method), " requires equal dimensions")
                );
                Vector {
                    data: self
                        .data
                        .iter()
                        .zip(rhs.data.iter())
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }

        impl $trait<Vector> for Vector {
            type Output = Vector;
            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }

        impl $trait<&Vector> for Vector {
            type Output = Vector;
            fn $method(self, rhs: &Vector) -> Vector {
                (&self).$method(rhs)
            }
        }

        impl $trait<Vector> for &Vector {
            type Output = Vector;
            fn $method(self, rhs: Vector) -> Vector {
                self.$method(&rhs)
            }
        }
    };
}

impl_binary_op!(Add, add, +);
impl_binary_op!(Sub, sub, -);

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Mul<&Vector> for f64 {
    type Output = Vector;
    fn mul(self, rhs: &Vector) -> Vector {
        rhs.scale(self)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64).as_slice(),
            &[0.0, 1.0, 2.0]
        );
        assert_eq!(Vector::basis(3, 1).as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "basis index")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn arithmetic() {
        let x = Vector::from(vec![1.0, 2.0]);
        let y = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&x + &y).as_slice(), &[4.0, 7.0]);
        assert_eq!((&y - &x).as_slice(), &[2.0, 3.0]);
        assert_eq!((&x * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((2.0 * &x).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&x).as_slice(), &[-1.0, -2.0]);
        let mut z = x.clone();
        z += &y;
        assert_eq!(z.as_slice(), &[4.0, 7.0]);
        z -= &y;
        assert_eq!(z.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn owned_op_variants() {
        let x = Vector::from(vec![1.0]);
        let y = Vector::from(vec![2.0]);
        assert_eq!((x.clone() + y.clone()).as_slice(), &[3.0]);
        assert_eq!((x.clone() + &y).as_slice(), &[3.0]);
        assert_eq!((&x + y.clone()).as_slice(), &[3.0]);
        assert_eq!((x.clone() - &y).as_slice(), &[-1.0]);
        assert_eq!((x * 3.0).as_slice(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn add_dimension_mismatch_panics() {
        let _ = Vector::zeros(2) + Vector::zeros(3);
    }

    #[test]
    fn dot_products() {
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let y = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(x.dot(&y), 32.0);
        assert!(x.checked_dot(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn distances() {
        let x = Vector::from(vec![1.0, 1.0]);
        let y = Vector::from(vec![4.0, 5.0]);
        assert_eq!(x.dist(&y), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut x = Vector::from(vec![1.0, 1.0]);
        x.axpy(2.0, &Vector::from(vec![3.0, 4.0]));
        assert_eq!(x.as_slice(), &[7.0, 9.0]);
    }

    #[test]
    fn hadamard_is_elementwise() {
        let x = Vector::from(vec![2.0, 3.0]);
        let y = Vector::from(vec![5.0, 7.0]);
        assert_eq!(x.hadamard(&y).as_slice(), &[10.0, 21.0]);
    }

    #[test]
    fn clamp_box_projects() {
        let x = Vector::from(vec![-2000.0, 0.5, 1500.0]);
        assert_eq!(
            x.clamp_box(-1000.0, 1000.0).as_slice(),
            &[-1000.0, 0.5, 1000.0]
        );
        let mut y = x.clone();
        y.clamp_box_mut(-1000.0, 1000.0);
        assert_eq!(y, x.clamp_box(-1000.0, 1000.0));
    }

    #[test]
    fn normalized_unit_norm() {
        let x = Vector::from(vec![3.0, 4.0]).normalized().unwrap();
        assert!((x.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::zeros(3).normalized().is_err());
    }

    #[test]
    fn aggregation_helpers() {
        let vs = vec![
            Vector::from(vec![1.0, 2.0]),
            Vector::from(vec![3.0, 4.0]),
            Vector::from(vec![5.0, 6.0]),
        ];
        assert_eq!(Vector::sum_of(&vs).unwrap().as_slice(), &[9.0, 12.0]);
        assert_eq!(Vector::mean_of(&vs).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(Vector::mean_of(&[]).is_err());
        let ragged = vec![Vector::zeros(1), Vector::zeros(2)];
        assert!(Vector::sum_of(&ragged).is_err());
    }

    #[test]
    fn statistics() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.sum(), 6.0);
        assert_eq!(v.mean(), 2.0);
    }

    #[test]
    fn approx_eq_tolerates() {
        let x = Vector::from(vec![1.0, 2.0]);
        let y = Vector::from(vec![1.0 + 1e-12, 2.0]);
        assert!(x.approx_eq(&y, 1e-9));
        assert!(!x.approx_eq(&Vector::zeros(2), 1e-9));
        assert!(!x.approx_eq(&Vector::zeros(3), 1e9));
    }

    #[test]
    fn non_finite_detection() {
        assert!(!Vector::from(vec![1.0, 2.0]).has_non_finite());
        assert!(Vector::from(vec![f64::NAN]).has_non_finite());
        assert!(Vector::from(vec![f64::INFINITY]).has_non_finite());
    }

    #[test]
    fn indexing_and_iteration() {
        let mut v = Vector::from(vec![1.0, 2.0]);
        v[0] = 9.0;
        assert_eq!(v[0], 9.0);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![9.0, 2.0]);
        assert_eq!(v.clone().into_vec(), vec![9.0, 2.0]);
    }

    #[test]
    fn display_is_bracketed() {
        let v = Vector::from(vec![1.0, -2.5]);
        assert_eq!(v.to_string(), "[1.000000, -2.500000]");
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
