//! Symmetric eigensolvers.
//!
//! Appendix J of the paper derives the smoothness constant `µ` as the largest
//! eigenvalue of `AᵢᵀAᵢ` and the strong-convexity constant `γ` as
//! `λ_min(A_SᵀA_S)/|S|`. Both are eigenvalues of small symmetric matrices,
//! which the cyclic Jacobi method computes to machine precision.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Smallest eigenvalue.
    ///
    /// # Panics
    ///
    /// Never panics: the decomposition always has at least one eigenvalue.
    // LINT-ALLOW(panic-reach): the spectrum is non-empty (0×0 input is rejected)
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest eigenvalue.
    pub fn max(&self) -> f64 {
        // LINT-ALLOW(no-panic-hot-path): the spectrum is non-empty (0×0 input is rejected)
        *self.values.last().expect("non-empty spectrum")
    }

    /// Condition number `λ_max / λ_min` (for positive-definite matrices).
    pub fn condition_number(&self) -> f64 {
        self.max() / self.min()
    }
}

/// Symmetric eigendecomposition via the cyclic Jacobi method.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input,
/// [`LinalgError::Dimension`] when the matrix is not symmetric (within
/// `1e-9`), [`LinalgError::Empty`] for a 0×0 matrix, and
/// [`LinalgError::NoConvergence`] if off-diagonal mass fails to vanish
/// within the sweep budget (does not occur for well-formed input).
///
/// # Example
///
/// ```
/// use abft_linalg::{Matrix, sym_eigenvalues};
///
/// # fn main() -> Result<(), abft_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = sym_eigenvalues(&a)?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn sym_eigenvalues(a: &Matrix) -> Result<SymEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if !a.is_symmetric(1e-9) {
        return Err(LinalgError::Dimension {
            expected: "a symmetric matrix".to_string(),
            actual: "an asymmetric matrix".to_string(),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;
    let tol = 1e-14 * a.frobenius_norm().max(1.0);

    for _sweep in 0..MAX_SWEEPS {
        let mut off_diag: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off_diag += m.get(i, j) * m.get(i, j);
            }
        }
        if off_diag.sqrt() <= tol {
            let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
            let vectors = Matrix::from_fn(n, n, |row, col| v.get(row, pairs[col].1));
            return Ok(SymEigen { values, vectors });
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        method: "jacobi eigensolver",
        iterations: MAX_SWEEPS,
    })
}

/// Largest-magnitude eigenvalue and eigenvector of a symmetric matrix via
/// power iteration, starting from the all-ones direction.
///
/// Used as an independent cross-check of the Jacobi solver and for large
/// matrices where only the spectral norm is needed.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for malformed
/// input and [`LinalgError::NoConvergence`] when the iteration stalls
/// (e.g. degenerate leading eigenspace orthogonal to the start vector).
pub fn power_iteration(
    a: &Matrix,
    max_iters: usize,
    tol: f64,
) -> Result<(f64, Vector), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let mut x = Vector::ones(n)
        .normalized()
        // LINT-ALLOW(no-panic-hot-path): the all-ones vector has positive norm
        .expect("ones vector is non-zero");
    let mut lambda = 0.0;
    for _ in 0..max_iters {
        // LINT-ALLOW(no-panic-hot-path): square matvec with a matching vector cannot fail
        let y = a.matvec(&x).expect("square matvec");
        let norm = y.norm();
        if norm < 1e-300 {
            // A x = 0: x is in the kernel; eigenvalue 0.
            return Ok((0.0, x));
        }
        let next = y.scale(1.0 / norm);
        // LINT-ALLOW(no-panic-hot-path): square matvec with a matching vector cannot fail
        let next_lambda = next.dot(&a.matvec(&next).expect("square matvec"));
        if (next_lambda - lambda).abs() <= tol * next_lambda.abs().max(1.0) {
            return Ok((next_lambda, next));
        }
        lambda = next_lambda;
        x = next;
    }
    Err(LinalgError::NoConvergence {
        method: "power iteration",
        iterations: max_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let eig = sym_eigenvalues(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] - 3.0).abs() < 1e-12);
        assert_eq!(eig.min(), eig.values[0]);
        assert_eq!(eig.max(), eig.values[2]);
    }

    #[test]
    fn known_2x2_spectrum() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = sym_eigenvalues(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
        assert!((eig.condition_number() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let eig = sym_eigenvalues(&a).unwrap();
        for (j, &lambda) in eig.values.iter().enumerate() {
            let v = eig.vectors.col_vector(j);
            let av = a.matvec(&v).unwrap();
            assert!(
                av.approx_eq(&v.scale(lambda), 1e-9),
                "A v != lambda v for eigenpair {j}"
            );
        }
    }

    #[test]
    fn trace_and_determinant_invariants() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]).unwrap();
        let eig = sym_eigenvalues(&a).unwrap();
        let trace: f64 = eig.values.iter().sum();
        let det: f64 = eig.values.iter().product();
        assert!((trace - 6.0).abs() < 1e-10);
        assert!((det - 1.0).abs() < 1e-10); // det = 5 - 4
    }

    #[test]
    fn rejects_asymmetric_and_nonsquare() {
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(sym_eigenvalues(&asym).is_err());
        assert!(sym_eigenvalues(&Matrix::zeros(2, 3)).is_err());
        assert!(sym_eigenvalues(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let (lambda, v) = power_iteration(&a, 10_000, 1e-14).unwrap();
        assert!((lambda - 3.0).abs() < 1e-8);
        // Eigenvector for lambda=3 is parallel to (1, 1).
        assert!((v[0].abs() - v[1].abs()).abs() < 1e-6);
    }

    #[test]
    fn power_iteration_agrees_with_jacobi() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let eig = sym_eigenvalues(&a).unwrap();
        let (lambda, _) = power_iteration(&a, 10_000, 1e-14).unwrap();
        assert!((lambda - eig.max()).abs() < 1e-7);
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let (lambda, _) = power_iteration(&a, 100, 1e-12).unwrap();
        assert_eq!(lambda, 0.0);
    }

    #[test]
    fn gram_matrix_spectrum_is_nonnegative() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.2, 1.3], &[-0.7, 0.4]]).unwrap();
        let eig = sym_eigenvalues(&a.gram()).unwrap();
        assert!(eig.min() >= -1e-10);
    }
}
