//! Dense linear-algebra substrate for the `approx-bft` workspace.
//!
//! The paper's algorithms need a small but complete set of numerical tools:
//! vector arithmetic for gradients and estimates, least squares for the
//! regression minimizers `x_S = (A_SᵀA_S)⁻¹A_SᵀB_S` (Appendix J, eq. 137),
//! symmetric eigenvalues for the smoothness/convexity constants
//! `µ = λ_max(AᵢᵀAᵢ)` and `γ = λ_min(A_SᵀA_S)/|S|` (Appendix J, eqs. 138–139),
//! and seeded Gaussian sampling for the *random* Byzantine attack (σ = 200).
//!
//! No external linear-algebra crate is used — this crate *is* the substrate,
//! built from scratch per the reproduction's design (see `DESIGN.md` §2).
//!
//! # Example
//!
//! ```
//! use abft_linalg::{Matrix, Vector, least_squares};
//!
//! # fn main() -> Result<(), abft_linalg::LinalgError> {
//! // Fit y = 2x + 1 from three exact points.
//! let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]])?;
//! let b = Vector::from(vec![3.0, 5.0, 7.0]);
//! let x = least_squares(&a, &b)?;
//! assert!((x[0] - 2.0).abs() < 1e-10);
//! assert!((x[1] - 1.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod pool;
pub mod rng;
pub mod solve;
pub mod stats;
pub mod vector;

pub use batch::{rowops, BatchScratch, GradientBatch};
pub use eigen::{power_iteration, sym_eigenvalues, SymEigen};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use pool::{SharedSlots, WorkerPool};
pub use solve::{cholesky, determinant, inverse, least_squares, solve, solve_spd};
pub use vector::Vector;

/// Returns `true` when `a` and `b` differ by at most `tol` in absolute value.
///
/// ```
/// assert!(abft_linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!abft_linalg::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::batch::{BatchScratch, GradientBatch};
    pub use crate::eigen::{power_iteration, sym_eigenvalues, SymEigen};
    pub use crate::error::LinalgError;
    pub use crate::matrix::Matrix;
    pub use crate::pool::{SharedSlots, WorkerPool};
    pub use crate::solve::{cholesky, determinant, inverse, least_squares, solve, solve_spd};
    pub use crate::vector::Vector;
}
