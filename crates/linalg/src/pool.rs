//! Deterministic worker pool for sharding batch aggregation.
//!
//! The aggregation hot path runs `n × T` times per experiment; past a few
//! thousand coordinates one core saturates long before the memory bus does.
//! [`WorkerPool`] shards that work across persistent OS threads fed through
//! the vendored `crossbeam` channels, under one strict contract:
//!
//! * **Fixed schedule.** Work is a half-open range of *units* (column
//!   tiles, pairwise-distance rows, …) split into contiguous chunks by a
//!   pure function of `(units, workers)` — never of timing. Chunk `w`
//!   always covers the same units no matter how threads interleave.
//! * **Disjoint slots.** Every unit writes its own output slot
//!   (see [`SharedSlots`]); no unit reads another unit's output.
//!
//! Together these make parallel output **bit-identical** to serial output
//! at any thread count: each slot sees the same floating-point operations
//! in the same order, and only *where* they execute changes. The
//! registry-wide `parallel ≡ serial` test in `abft-filters` pins this for
//! every registered filter.
//!
//! The caller participates as worker 0 — a pool of `threads = 1` spawns no
//! threads at all and runs everything inline, which is why serial remains
//! the allocation-free default. Each spawned worker owns a reusable scratch
//! `Vec<f64>` that lives as long as the pool (the scratch-per-worker arena
//! the tiled kernels carve their gather buffers from), so steady-state
//! parallel rounds do not allocate in the workers either.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

/// A task executed over a unit range with a per-worker scratch buffer.
type Task<'a> = dyn Fn(&mut Vec<f64>, Range<usize>) + Sync + 'a;

/// A chunk's completion: `Ok` on success, the original panic payload
/// otherwise (so the caller can `resume_unwind` it, message intact).
type Completion = Result<(), Box<dyn std::any::Any + Send>>;

/// A dispatched chunk: a raw pointer to the borrowed task (kept alive by
/// [`WorkerPool::run_with_scratch`] until every completion is collected),
/// the unit range, and the completion channel.
struct Job {
    task: *const Task<'static>,
    range: Range<usize>,
    done: Sender<Completion>,
}

// SAFETY: the task pointer is only dereferenced while `run_with_scratch`
// blocks on the completion channel, so the borrow it was created from is
// still live; `Task` itself is `Sync`.
unsafe impl Send for Job {}

/// One spawned worker: its job queue and join handle.
struct Worker {
    jobs: Sender<Job>,
    thread: Option<JoinHandle<()>>,
}

/// A deterministic pool of `threads` aggregation workers (the caller
/// counts as one; `threads − 1` OS threads back it).
///
/// Cheap to share (`Send + Sync`) **and cheap to hold**: worker threads
/// spawn lazily on the first dispatched run, so a runtime that creates a
/// pool "just in case" — e.g. for a grid whose rounds all land below the
/// kernels' sharding floor — pays nothing. Drivers create one per run —
/// or one per suite, shared by all suite workers — and hand it to the
/// round's [`GradientBatch`](crate::GradientBatch) via
/// [`set_worker_pool`](crate::GradientBatch::set_worker_pool) so filters
/// can shard their kernels without any signature change.
pub struct WorkerPool {
    threads: usize,
    workers: std::sync::OnceLock<Vec<Worker>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field("spawned", &self.workers.get().is_some())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1). `threads = 1`
    /// executes every task inline on the caller; larger pools spawn their
    /// OS threads on first use.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            workers: std::sync::OnceLock::new(),
        }
    }

    /// Total worker count, the caller included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The spawned workers, creating them on first dispatch.
    fn workers(&self) -> &[Worker] {
        self.workers.get_or_init(|| {
            (1..self.threads)
                .map(|w| {
                    let (tx, rx) = unbounded::<Job>();
                    let thread = std::thread::Builder::new()
                        .name(format!("abft-agg-{w}"))
                        .spawn(move || worker_loop(rx))
                        // LINT-ALLOW(no-panic-hot-path): spawn failure is
                        // resource exhaustion at pool creation, before any
                        // aggregation runs — not a hot-path data panic.
                        .expect("worker thread spawn");
                    Worker {
                        jobs: tx,
                        thread: Some(thread),
                    }
                })
                .collect()
        })
    }

    /// Executes `task` over `0..units` split into at most
    /// [`threads`](WorkerPool::threads) contiguous chunks with the fixed
    /// schedule, blocking until every chunk has completed. The caller runs
    /// chunk 0 with `caller_scratch`; spawned workers run the rest with
    /// their own persistent scratch buffers.
    ///
    /// # Panics
    ///
    /// Propagates a panic raised by `task` on any worker (after all other
    /// chunks have completed, so the borrow discipline holds even then).
    pub fn run_with_scratch(
        &self,
        units: usize,
        caller_scratch: &mut Vec<f64>,
        task: &(dyn Fn(&mut Vec<f64>, Range<usize>) + Sync),
    ) {
        if units == 0 {
            return;
        }
        let chunks = self.threads().min(units);
        if chunks == 1 {
            task(caller_scratch, 0..units);
            return;
        }

        // SAFETY: erasing the task's lifetime is sound because every
        // dispatched job completes (its `done` send) before this function
        // returns, and the pointer is never stored past that.
        let task_ptr: *const Task<'static> =
            unsafe { std::mem::transmute::<*const Task<'_>, *const Task<'static>>(task) };
        let workers = self.workers();
        let (done_tx, done_rx) = unbounded::<Completion>();
        for w in 1..chunks {
            // LINT-ALLOW(panic-reach): `chunks <= threads() == workers.len() + 1`,
            // so `w - 1` indexes in range.
            let sent = workers[w - 1].jobs.send(Job {
                task: task_ptr,
                range: chunk(units, chunks, w),
                done: done_tx.clone(),
            });
            // LINT-ALLOW(no-panic-hot-path): a send can only fail if a
            // worker thread died, which itself requires a panic already in
            // flight; this assert turns that corruption into a clean stop.
            assert!(sent.is_ok(), "pool workers outlive the pool");
        }
        let caller_outcome = catch_unwind(AssertUnwindSafe(|| {
            task(caller_scratch, chunk(units, chunks, 0))
        }));
        let mut worker_panic = None;
        for _ in 1..chunks {
            // LINT-ALLOW(no-panic-hot-path): every dispatched job sends a
            // completion even when the task panics (catch_unwind in the
            // worker loop), so recv can only fail on pool teardown bugs.
            if let Err(payload) = done_rx.recv().expect("worker completes its chunk") {
                worker_panic.get_or_insert(payload);
            }
        }
        // Every loan is resolved at this point, so the borrow discipline
        // holds even on the unwind paths. The caller chunk's panic wins
        // (it is the one a serial run would have raised); otherwise the
        // first worker's original payload is re-raised, message intact.
        if let Err(payload) = caller_outcome {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// [`WorkerPool::run_with_scratch`] for tasks that need no scratch
    /// buffer.
    ///
    /// # Panics
    ///
    /// See [`WorkerPool::run_with_scratch`].
    pub fn run(&self, units: usize, task: &(dyn Fn(Range<usize>) + Sync)) {
        let mut unused = Vec::new();
        self.run_with_scratch(units, &mut unused, &|_scratch, range| task(range));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let Some(workers) = self.workers.get_mut() else {
            return; // never dispatched: nothing was spawned
        };
        for worker in workers.iter_mut() {
            // Dropping the sender disconnects the queue; the worker's recv
            // fails and its loop exits.
            let (tx, _) = unbounded();
            drop(std::mem::replace(&mut worker.jobs, tx));
        }
        for worker in workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// The worker thread body: execute jobs with a persistent scratch buffer,
/// reporting completion — or the original panic payload — per job.
fn worker_loop(jobs: Receiver<Job>) {
    let mut scratch = Vec::new();
    while let Ok(job) = jobs.recv() {
        // SAFETY: see `Job` — the caller blocks until `done` is signalled.
        let task = unsafe { &*job.task };
        let outcome = catch_unwind(AssertUnwindSafe(|| task(&mut scratch, job.range)));
        let _ = job.done.send(outcome);
    }
}

/// The fixed schedule: chunk `w` of `units` across `chunks` workers —
/// contiguous, balanced (sizes differ by at most one), and a pure function
/// of its arguments.
fn chunk(units: usize, chunks: usize, w: usize) -> Range<usize> {
    let base = units / chunks;
    let extra = units % chunks;
    let start = w * base + w.min(extra);
    let len = base + usize::from(w < extra);
    start..start + len
}

/// The `ABFT_AGGREGATION_THREADS` environment override (values ≥ 1), or
/// `fallback` when unset or unparsable. This is how CI forces the whole
/// tier-1 suite through the parallel path without a feature flag.
pub fn env_aggregation_threads(fallback: usize) -> usize {
    std::env::var("ABFT_AGGREGATION_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(fallback)
}

/// A raw shared view of a mutable `f64` slice for disjoint-slot parallel
/// writes — the "slots" half of the pool contract.
///
/// Kernels wrap their output slice once, then each chunk writes only the
/// slot indices of its own units. The wrapper is `Sync` precisely because
/// the fixed schedule guarantees no two chunks touch the same index.
pub struct SharedSlots<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: all access goes through `unsafe` methods whose callers promise
// disjoint indices; the underlying storage outlives `'a`.
unsafe impl Send for SharedSlots<'_> {}
// SAFETY: see `Send` above — concurrent access is to disjoint indices.
unsafe impl Sync for SharedSlots<'_> {}

impl<'a> SharedSlots<'a> {
    /// Wraps `slice` for disjoint parallel writes.
    pub fn new(slice: &'a mut [f64]) -> Self {
        SharedSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread accesses slot `i` concurrently.
    pub unsafe fn write(&self, i: usize, value: f64) {
        debug_assert!(i < self.len);
        // SAFETY: `i < len` per the contract above, and the caller promises
        // no concurrent access to slot `i`.
        unsafe { *self.ptr.add(i) = value };
    }

    /// Mutably borrows the sub-slice `range`.
    ///
    /// # Safety
    ///
    /// `range` is in bounds and disjoint from every range other threads
    /// access concurrently.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, range: Range<usize>) -> &mut [f64] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: `range` is in bounds per the contract above, and the
        // caller promises it is disjoint from every concurrent access.
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_balanced_and_total() {
        for units in [1usize, 2, 3, 7, 32, 100] {
            for chunks in 1..=4.min(units) {
                let mut covered = Vec::new();
                for w in 0..chunks {
                    let range = chunk(units, chunks, w);
                    assert!(range.len() >= units / chunks);
                    assert!(range.len() <= units / chunks + 1);
                    covered.extend(range);
                }
                assert_eq!(covered, (0..units).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0.0; 8];
        let slots = SharedSlots::new(&mut out);
        pool.run(8, &|range| {
            for i in range {
                // SAFETY: `i` comes from this chunk's disjoint range.
                unsafe { slots.write(i, i as f64) };
            }
        });
        assert_eq!(out, (0..8).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let fill = |pool: &WorkerPool, out: &mut [f64]| {
            let slots = SharedSlots::new(out);
            pool.run(slots.len(), &|range| {
                for i in range {
                    // A slot computation with nontrivial rounding.
                    let v = (0..40).fold(0.1 * i as f64, |acc, k| acc + 1.0 / (k as f64 + 1.1));
                    // SAFETY: `i` comes from this chunk's disjoint range.
                    unsafe { slots.write(i, v) };
                }
            });
        };
        let mut serial = vec![0.0; 101];
        fill(&WorkerPool::new(1), &mut serial);
        for threads in [2, 3, 4] {
            let pool = WorkerPool::new(threads);
            let mut parallel = vec![0.0; 101];
            fill(&pool, &mut parallel);
            assert!(
                serial
                    .iter()
                    .zip(&parallel)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{threads}-thread output diverged from serial"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_runs() {
        let pool = WorkerPool::new(3);
        let mut caller = Vec::new();
        for round in 0..50usize {
            let mut out = vec![0.0; 17];
            let slots = SharedSlots::new(&mut out);
            pool.run_with_scratch(17, &mut caller, &|scratch, range| {
                scratch.clear();
                scratch.resize(4, round as f64);
                for i in range {
                    // SAFETY: `i` comes from this chunk's disjoint range.
                    unsafe { slots.write(i, scratch[0] + i as f64) };
                }
            });
            assert!(out
                .iter()
                .enumerate()
                .all(|(i, &v)| v == round as f64 + i as f64));
        }
    }

    #[test]
    fn workers_spawn_lazily_on_first_dispatch() {
        let pool = WorkerPool::new(4);
        assert!(format!("{pool:?}").contains("spawned: false"));
        pool.run(1, &|_| {}); // a single chunk runs inline: still nothing
        assert!(format!("{pool:?}").contains("spawned: false"));
        pool.run(8, &|_| {});
        assert!(format!("{pool:?}").contains("spawned: true"));
    }

    #[test]
    fn fewer_units_than_threads_still_covers_everything() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0.0; 2];
        let slots = SharedSlots::new(&mut out);
        pool.run(2, &|range| {
            for i in range {
                // SAFETY: `i` comes from this chunk's disjoint range.
                unsafe { slots.write(i, 1.0) };
            }
        });
        assert_eq!(out, vec![1.0, 1.0]);
        pool.run(0, &|_| panic!("zero units dispatch nothing"));
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|range| {
                if range.contains(&1) {
                    panic!("boom");
                }
            });
        }));
        // The worker's original payload is re-raised, message intact.
        let payload = result.expect_err("worker panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool survives a panicked task.
        let mut out = vec![0.0; 2];
        let slots = SharedSlots::new(&mut out);
        pool.run(2, &|range| {
            for i in range {
                // SAFETY: `i` comes from this chunk's disjoint range.
                unsafe { slots.write(i, 2.0) };
            }
        });
        assert_eq!(out, vec![2.0, 2.0]);
    }

    #[test]
    fn env_override_parses_defensively() {
        // Not set in the test environment unless CI forces it; both of
        // those are legitimate, so only the invariants are asserted.
        let t = env_aggregation_threads(1);
        assert!(t >= 1);
        assert_eq!(
            env_aggregation_threads(3).max(t),
            env_aggregation_threads(3).max(t)
        );
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<WorkerPool>();
        assert_bounds::<SharedSlots<'_>>();
    }
}
