//! Contiguous gradient storage for the aggregation hot path.
//!
//! The DGD loop (Section 4.1) aggregates `n` gradients of dimension `d`
//! every iteration. Passing them as `&[Vector]` means `n` separate heap
//! allocations per round and pointer-chasing inside every filter — fine
//! for the paper's `n = 6, d = 2` regression, hostile to the production
//! shapes this repository targets. [`GradientBatch`] replaces that with
//! one row-major `n × d` buffer that is filled in place each round and
//! reused across all `T` iterations, plus a [`BatchScratch`] arena of
//! reusable working buffers so filters allocate nothing per call.
//!
//! # Example
//!
//! ```
//! use abft_linalg::GradientBatch;
//!
//! let mut batch = GradientBatch::with_capacity(3, 2);
//! batch.push_row(&[1.0, 2.0]);
//! batch.push_row(&[3.0, 4.0]);
//! assert_eq!(batch.len(), 2);
//! assert_eq!(batch.row(1), &[3.0, 4.0]);
//!
//! // Rounds reuse the same buffer: clear keeps the allocation.
//! batch.clear();
//! assert!(batch.is_empty());
//! ```

use crate::pool::WorkerPool;
use abft_telemetry::DispatchProfile;
use std::cell::{RefCell, RefMut};
use std::sync::Arc;

/// Reusable working buffers for batch consumers (filters, drivers).
///
/// Buffers keep their capacity across uses, so a filter that runs every
/// iteration allocates only on its first call per size regime. Fields are
/// plain `Vec`s — callers `clear`/`resize` them to whatever shape they
/// need; nothing about their content survives a call by contract.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Per-row scalar workspace (norms, scores).
    pub keys: Vec<f64>,
    /// Per-row scalar workspace (column gathers, distances).
    pub column: Vec<f64>,
    /// Per-row index workspace (sort orders).
    pub order: Vec<usize>,
    /// Per-row index workspace (candidate pools).
    pub pool: Vec<usize>,
    /// Per-row index workspace (selections).
    pub selection: Vec<usize>,
    /// Dimension-sized vector workspace.
    pub vec_a: Vec<f64>,
    /// Dimension-sized vector workspace.
    pub vec_b: Vec<f64>,
    /// Arbitrary flat matrix workspace (e.g. bucket means).
    pub flat: Vec<f64>,
}

/// A contiguous, row-major batch of `n` gradients of dimension `d`.
///
/// The batch owns its storage and a [`BatchScratch`] arena behind a
/// `RefCell`, making it a single-thread working arena: the aggregation
/// entry points take `&GradientBatch` and borrow the scratch internally.
/// (The type is `Send` but deliberately not `Sync` — each server loop or
/// simulation owns one.)
#[derive(Debug)]
pub struct GradientBatch {
    data: Vec<f64>,
    dim: usize,
    rows: usize,
    scratch: RefCell<BatchScratch>,
    pool: Option<Arc<WorkerPool>>,
    profile: Option<DispatchProfile>,
}

impl GradientBatch {
    /// An empty batch of `dim`-dimensional rows.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`: a zero-dimension gradient carries no
    /// information, and rejecting it here keeps every row exactly `dim`
    /// entries wide with no special cases downstream.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(0, dim)
    }

    /// An empty batch with storage reserved for `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` (see [`GradientBatch::new`]).
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(dim > 0, "GradientBatch requires dim > 0");
        GradientBatch {
            data: Vec::with_capacity(rows * dim),
            dim,
            rows: 0,
            scratch: RefCell::new(BatchScratch::default()),
            pool: None,
            profile: None,
        }
    }

    /// Attaches (or detaches, with `None`) the worker pool filters shard
    /// their kernels across. Serial aggregation — the default — is simply a
    /// batch with no pool.
    pub fn set_worker_pool(&mut self, pool: Option<Arc<WorkerPool>>) {
        self.pool = pool;
    }

    /// The attached worker pool, if any. A pool of one thread counts as
    /// serial and is reported as `None`, so kernels have exactly one
    /// serial path.
    pub fn worker_pool(&self) -> Option<&WorkerPool> {
        self.pool.as_deref().filter(|pool| pool.threads() > 1)
    }

    /// Installs (or removes, with `None`) a telemetry profile that the
    /// parallel kernels time their pool dispatches into. Drivers install
    /// one per run when wall-clock telemetry is enabled and
    /// [`take_dispatch_profile`](GradientBatch::take_dispatch_profile)
    /// it back at run end; a batch without one times nothing.
    pub fn set_dispatch_profile(&mut self, profile: Option<DispatchProfile>) {
        self.profile = profile;
    }

    /// The installed dispatch profile, if any.
    pub fn dispatch_profile(&self) -> Option<&DispatchProfile> {
        self.profile.as_ref()
    }

    /// Removes and returns the installed dispatch profile.
    pub fn take_dispatch_profile(&mut self) -> Option<DispatchProfile> {
        self.profile.take()
    }

    /// Row dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows currently in the batch.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Drops all rows, keeping the allocation (per-round reset).
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Resizes to exactly `rows` zeroed rows, keeping the allocation.
    ///
    /// Used by drivers that assign row slots up front and then fill them
    /// out of order (e.g. honest gradients first, forgeries second).
    pub fn reset_rows(&mut self, rows: usize) {
        self.data.clear();
        self.data.resize(rows * self.dim, 0.0);
        self.rows = rows;
    }

    /// Appends a row copied from `src`, returning its index.
    ///
    /// # Panics
    ///
    /// Panics when `src.len() != self.dim()`.
    pub fn push_row(&mut self, src: &[f64]) -> usize {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert_eq!(src.len(), self.dim, "row length must equal batch dim");
        self.data.extend_from_slice(src);
        self.rows += 1;
        self.rows - 1
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    // LINT-ALLOW(panic-reach): the assert bounds `i`, so the slice
    // arithmetic below it stays inside `data`.
    pub fn row(&self, i: usize) -> &[f64] {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < self.rows, "row {i} out of range for {} rows", self.rows);
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    // LINT-ALLOW(panic-reach): the assert bounds `i`, so the slice
    // arithmetic below it stays inside `data`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < self.rows, "row {i} out of range for {} rows", self.rows);
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Removes row `i`, shifting the rows after it down by one (used by
    /// the threaded server when an agent is eliminated mid-round and its
    /// pre-assigned row must be vacated).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn remove_row(&mut self, i: usize) {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < self.rows, "row {i} out of range for {} rows", self.rows);
        let start = i * self.dim;
        self.data.copy_within((i + 1) * self.dim.., start);
        self.data.truncate((self.rows - 1) * self.dim);
        self.rows -= 1;
    }

    /// Iterates over the rows in order.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        // dim > 0 is a construction invariant, so the chunk size is valid.
        self.data.chunks_exact(self.dim).take(self.rows)
    }

    /// The whole buffer as one flat slice (`len() * dim()` values).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// The whole buffer as one flat mutable slice. Runtimes that stream
    /// agent replies directly into their rows derive per-row pointers from
    /// this base exactly once per round.
    pub fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `true` if any entry of any row is NaN or infinite, along with the
    /// first offending row index.
    pub fn first_non_finite_row(&self) -> Option<usize> {
        self.rows_iter()
            .position(|row| row.iter().any(|a| !a.is_finite()))
    }

    /// Borrows the scratch arena.
    ///
    /// # Panics
    ///
    /// Panics when the scratch is already borrowed — aggregation entry
    /// points take it exactly once and pass it down by reference, so a
    /// double borrow indicates a bug in a filter implementation.
    pub fn scratch(&self) -> RefMut<'_, BatchScratch> {
        self.scratch.borrow_mut()
    }
}

/// Elementary slice kernels shared by filters and drivers. These mirror
/// the corresponding [`crate::Vector`] operations but run on borrowed rows.
pub mod rowops {
    /// Squared Euclidean norm.
    pub fn norm_sq(row: &[f64]) -> f64 {
        row.iter().map(|a| a * a).sum()
    }

    /// Euclidean norm.
    pub fn norm(row: &[f64]) -> f64 {
        norm_sq(row).sqrt()
    }

    /// Inner product.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ (debug builds).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Euclidean distance.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ (debug builds).
    pub fn dist(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// `acc[i] += row[i]`.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ (debug builds).
    pub fn add_assign(acc: &mut [f64], row: &[f64]) {
        debug_assert_eq!(acc.len(), row.len());
        for (a, b) in acc.iter_mut().zip(row) {
            *a += b;
        }
    }

    /// `acc[i] += factor * row[i]` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics when lengths differ (debug builds).
    pub fn axpy(acc: &mut [f64], factor: f64, row: &[f64]) {
        debug_assert_eq!(acc.len(), row.len());
        for (a, b) in acc.iter_mut().zip(row) {
            *a += factor * b;
        }
    }

    /// `row[i] *= factor`.
    pub fn scale(row: &mut [f64], factor: f64) {
        for a in row {
            *a *= factor;
        }
    }

    /// `row[i] = 0.0`.
    pub fn fill_zero(row: &mut [f64]) {
        row.fill(0.0);
    }

    /// Lexicographic comparison of two rows under IEEE-754 `totalOrder`
    /// ([`f64::total_cmp`] per entry, then length).
    ///
    /// Total order makes tie-breaking well-defined on *any* input: a NaN
    /// that slips past an entry guard sorts deterministically instead of
    /// aborting the aggregator mid-round. (For the finite values the
    /// aggregation path actually admits, this agrees with the numeric
    /// order, except that `-0.0` sorts before `+0.0`.)
    pub fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
        for (x, y) in a.iter().zip(b) {
            match x.total_cmp(y) {
                std::cmp::Ordering::Equal => {}
                unequal => return unequal,
            }
        }
        a.len().cmp(&b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::rowops;
    use super::GradientBatch;
    use crate::Vector;

    #[test]
    fn push_and_read_rows() {
        let mut b = GradientBatch::with_capacity(2, 3);
        assert_eq!(b.push_row(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(b.push_row(&[4.0, 5.0, 6.0]), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(b.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_row_rejects_wrong_dim() {
        GradientBatch::new(2).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let b = GradientBatch::new(2);
        let _ = b.row(0);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn zero_dimension_batches_are_rejected_at_construction() {
        let _ = GradientBatch::new(0);
    }

    #[test]
    fn remove_row_shifts_later_rows_down() {
        let mut b = GradientBatch::new(2);
        b.push_row(&[1.0, 2.0]);
        b.push_row(&[3.0, 4.0]);
        b.push_row(&[5.0, 6.0]);
        b.remove_row(1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), &[1.0, 2.0]);
        assert_eq!(b.row(1), &[5.0, 6.0]);
        b.remove_row(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.as_flat(), &[1.0, 2.0]);
        b.remove_row(0);
        assert!(b.is_empty());
    }

    #[test]
    fn worker_pool_attachment_reports_parallel_pools_only() {
        use crate::pool::WorkerPool;
        use std::sync::Arc;
        let mut b = GradientBatch::new(2);
        assert!(b.worker_pool().is_none());
        b.set_worker_pool(Some(Arc::new(WorkerPool::new(1))));
        assert!(b.worker_pool().is_none(), "1 thread means serial");
        b.set_worker_pool(Some(Arc::new(WorkerPool::new(2))));
        assert_eq!(b.worker_pool().expect("parallel pool").threads(), 2);
        b.set_worker_pool(None);
        assert!(b.worker_pool().is_none());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = GradientBatch::with_capacity(4, 8);
        for _ in 0..4 {
            b.push_row(&[0.0; 8]);
        }
        let cap = b.data.capacity();
        b.clear();
        assert!(b.is_empty());
        for _ in 0..4 {
            b.push_row(&[1.0; 8]);
        }
        assert_eq!(b.data.capacity(), cap, "round reuse must not reallocate");
    }

    #[test]
    fn reset_rows_zeroes_slots() {
        let mut b = GradientBatch::new(2);
        b.push_row(&[9.0, 9.0]);
        b.reset_rows(3);
        assert_eq!(b.len(), 3);
        assert!(b.as_flat().iter().all(|&x| x == 0.0));
        b.row_mut(2).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(b.row(2), &[1.0, 2.0]);
        assert_eq!(b.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn non_finite_detection_reports_first_row() {
        let mut b = GradientBatch::new(2);
        b.push_row(&[1.0, 2.0]);
        b.push_row(&[f64::NAN, 0.0]);
        b.push_row(&[f64::INFINITY, 0.0]);
        assert_eq!(b.first_non_finite_row(), Some(1));
        let mut ok = GradientBatch::new(1);
        ok.push_row(&[0.5]);
        assert_eq!(ok.first_non_finite_row(), None);
    }

    #[test]
    fn rows_iter_matches_rows() {
        let mut b = GradientBatch::new(2);
        b.push_row(&[1.0, 2.0]);
        b.push_row(&[3.0, 4.0]);
        let collected: Vec<&[f64]> = b.rows_iter().collect();
        assert_eq!(collected, vec![b.row(0), b.row(1)]);
    }

    #[test]
    fn scratch_buffers_persist_capacity() {
        let b = GradientBatch::new(4);
        {
            let mut s = b.scratch();
            s.keys.resize(100, 0.0);
        }
        let s = b.scratch();
        assert!(s.keys.capacity() >= 100);
    }

    #[test]
    fn rowops_match_vector_ops() {
        let x = Vector::from(vec![3.0, -4.0]);
        let y = Vector::from(vec![1.0, 1.0]);
        assert_eq!(rowops::norm(x.as_slice()), x.norm());
        assert_eq!(rowops::norm_sq(x.as_slice()), x.norm_sq());
        assert_eq!(rowops::dot(x.as_slice(), y.as_slice()), x.dot(&y));
        assert_eq!(rowops::dist(x.as_slice(), y.as_slice()), x.dist(&y));

        let mut acc = vec![1.0, 1.0];
        rowops::add_assign(&mut acc, x.as_slice());
        assert_eq!(acc, vec![4.0, -3.0]);
        rowops::axpy(&mut acc, 2.0, y.as_slice());
        assert_eq!(acc, vec![6.0, -1.0]);
        rowops::scale(&mut acc, 0.5);
        assert_eq!(acc, vec![3.0, -0.5]);
        rowops::fill_zero(&mut acc);
        assert_eq!(acc, vec![0.0, 0.0]);
    }

    #[test]
    fn lex_cmp_orders_rows() {
        use std::cmp::Ordering;
        assert_eq!(rowops::lex_cmp(&[1.0, 2.0], &[1.0, 3.0]), Ordering::Less);
        assert_eq!(rowops::lex_cmp(&[2.0], &[1.0]), Ordering::Greater);
        assert_eq!(rowops::lex_cmp(&[1.0], &[1.0]), Ordering::Equal);
        assert_eq!(rowops::lex_cmp(&[1.0], &[1.0, 0.0]), Ordering::Less);
    }

    #[test]
    fn lex_cmp_is_total_on_non_finite_rows() {
        use std::cmp::Ordering;
        // A NaN that slips past the entry guard must order, not panic.
        assert_eq!(rowops::lex_cmp(&[f64::NAN], &[1.0]), Ordering::Greater);
        assert_eq!(rowops::lex_cmp(&[1.0], &[f64::NAN]), Ordering::Less);
        assert_eq!(rowops::lex_cmp(&[f64::NAN], &[f64::NAN]), Ordering::Equal);
        assert_eq!(
            rowops::lex_cmp(&[f64::NEG_INFINITY], &[f64::INFINITY]),
            Ordering::Less
        );
    }
}
