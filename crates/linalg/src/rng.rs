//! Seeded randomness helpers.
//!
//! Every stochastic component in the workspace (random Byzantine vectors,
//! dataset generation, mini-batch sampling) derives from an explicitly
//! seeded [`rand::rngs::StdRng`] so that all experiments are reproducible
//! bit-for-bit across runs.

use crate::vector::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// ```
/// use abft_linalg::rng::{seeded_rng, standard_normal};
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard normal variate via the Box–Muller transform.
///
/// `rand` alone (without `rand_distr`, which is outside the sanctioned
/// dependency set) provides only uniform variates, so the Gaussian transform
/// is implemented here.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Box–Muller: u1 ∈ (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a vector of i.i.d. `N(mean, std²)` entries — the shape of the
/// paper's *random* Byzantine fault (zero mean, isotropic covariance,
/// σ = 200).
pub fn gaussian_vector(rng: &mut impl Rng, dim: usize, mean: f64, std: f64) -> Vector {
    Vector::from_fn(dim, |_| mean + std * standard_normal(rng))
}

/// Fills `out` with i.i.d. `N(mean, std²)` entries in place — the
/// allocation-free twin of [`gaussian_vector`] used when forging directly
/// into a [`crate::GradientBatch`] row. Draws the same stream as
/// `gaussian_vector` for the same RNG state.
pub fn fill_gaussian(rng: &mut impl Rng, out: &mut [f64], mean: f64, std: f64) {
    for slot in out {
        *slot = mean + std * standard_normal(rng);
    }
}

/// Samples a vector of i.i.d. `Uniform[lo, hi)` entries.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_vector(rng: &mut impl Rng, dim: usize, lo: f64, hi: f64) -> Vector {
    // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
    assert!(lo < hi, "uniform_vector requires lo < hi");
    Vector::from_fn(dim, |_| rng.gen_range(lo..hi))
}

/// Samples a uniformly random unit vector (Gaussian direction, normalized).
pub fn random_unit_vector(rng: &mut impl Rng, dim: usize) -> Vector {
    // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
    assert!(dim > 0, "random_unit_vector requires dim > 0");
    loop {
        let v = gaussian_vector(rng, dim, 0.0, 1.0);
        if let Ok(u) = v.normalized() {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "sample mean {mean} too far from 0");
        assert!(
            (var - 1.0).abs() < 0.02,
            "sample variance {var} too far from 1"
        );
    }

    #[test]
    fn gaussian_vector_shape_and_scale() {
        let mut rng = seeded_rng(3);
        let v = gaussian_vector(&mut rng, 10_000, 5.0, 200.0);
        assert_eq!(v.dim(), 10_000);
        let mean = v.mean();
        assert!((mean - 5.0).abs() < 10.0, "mean {mean} too far from 5");
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.dim() as f64;
        assert!(
            (var.sqrt() - 200.0).abs() < 10.0,
            "std {} too far from 200",
            var.sqrt()
        );
    }

    #[test]
    fn uniform_vector_in_range() {
        let mut rng = seeded_rng(4);
        let v = uniform_vector(&mut rng, 1000, -2.0, 3.0);
        assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_vector_rejects_empty_range() {
        let mut rng = seeded_rng(5);
        let _ = uniform_vector(&mut rng, 2, 1.0, 1.0);
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let mut rng = seeded_rng(6);
        for dim in [1, 2, 10] {
            let u = random_unit_vector(&mut rng, dim);
            assert!((u.norm() - 1.0).abs() < 1e-12);
        }
    }
}
