//! Direct solvers: Gaussian elimination, Cholesky, Householder-QR least
//! squares.
//!
//! These are the tools behind the regression minimizers of Appendix J:
//! `x_S = argmin ‖B_S − A_S x‖²` is computed by [`least_squares`], which uses
//! a Householder QR factorization (numerically safer than forming the normal
//! equations, though [`solve_spd`] on the Gram matrix gives the same answer
//! for well-conditioned instances and is kept for cross-checking).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Pivot magnitude below which a matrix is declared singular.
const SINGULAR_TOL: f64 = 1e-12;

/// Solves the square system `A x = b` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `A` is not square,
/// [`LinalgError::Dimension`] when `b` has the wrong length, and
/// [`LinalgError::Singular`] when a pivot underflows the tolerance.
///
/// # Example
///
/// ```
/// use abft_linalg::{Matrix, Vector, solve};
///
/// # fn main() -> Result<(), abft_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let b = Vector::from(vec![3.0, 5.0]);
/// let x = solve(&a, &b)?;
/// assert!(a.matvec(&x)?.approx_eq(&b, 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.dim() != a.rows() {
        return Err(LinalgError::Dimension {
            expected: format!("dim {}", a.rows()),
            actual: format!("dim {}", b.dim()),
        });
    }
    let n = a.rows();
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.clone();

    for col in 0..n {
        // Partial pivoting: bring the largest |entry| in this column to the
        // top. Ties keep the later row (matching the historical `max_by`
        // choice); `total_cmp` keeps the scan deterministic even for NaN.
        let pivot_row = pivot_row(&m, col, n);
        if m.get(pivot_row, col).abs() < SINGULAR_TOL {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m.get(col, j);
                m.set(col, j, m.get(pivot_row, j));
                m.set(pivot_row, j, tmp);
            }
            let tmp = rhs[col];
            rhs[col] = rhs[pivot_row];
            rhs[pivot_row] = tmp;
        }
        let pivot = m.get(col, col);
        for row in (col + 1)..n {
            let factor = m.get(row, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                m.set(row, j, m.get(row, j) - factor * m.get(col, j));
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = Vector::zeros(n);
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for j in (row + 1)..n {
            acc -= m.get(row, j) * x[j];
        }
        x[row] = acc / m.get(row, row);
    }
    Ok(x)
}

/// The partial-pivoting row for `col`: the row in `col..n` with the
/// largest `|entry|` in that column, later rows winning ties — the same
/// selection the historical `Iterator::max_by` scan made, but total (no
/// panic on NaN: `total_cmp` orders it deterministically).
fn pivot_row(m: &Matrix, col: usize, n: usize) -> usize {
    let mut best = col;
    let mut best_mag = m.get(col, col).abs();
    for i in (col + 1)..n {
        let mag = m.get(i, col).abs();
        if mag.total_cmp(&best_mag) != std::cmp::Ordering::Less {
            best = i;
            best_mag = mag;
        }
    }
    best
}

/// Determinant via LU decomposition with partial pivoting.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn determinant(a: &Matrix) -> Result<f64, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut det = 1.0;
    for col in 0..n {
        let pivot_row = pivot_row(&m, col, n);
        let pivot = m.get(pivot_row, col);
        if pivot.abs() < SINGULAR_TOL {
            return Ok(0.0);
        }
        if pivot_row != col {
            det = -det;
            for j in 0..n {
                let tmp = m.get(col, j);
                m.set(col, j, m.get(pivot_row, j));
                m.set(pivot_row, j, tmp);
            }
        }
        det *= m.get(col, col);
        for row in (col + 1)..n {
            let factor = m.get(row, col) / m.get(col, col);
            for j in col..n {
                m.set(row, j, m.get(row, j) - factor * m.get(col, j));
            }
        }
    }
    Ok(det)
}

/// Matrix inverse via column-wise solves.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for j in 0..n {
        let e = Vector::basis(n, j);
        let col = solve(a, &e)?;
        for i in 0..n {
            out.set(i, j, col[i]);
        }
    }
    Ok(out)
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix,
/// returning the lower-triangular factor `L`.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
/// non-positive.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Propagates [`cholesky`]'s errors and [`LinalgError::Dimension`] for a
/// wrong-length right-hand side.
pub fn solve_spd(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    if b.dim() != a.rows() {
        return Err(LinalgError::Dimension {
            expected: format!("dim {}", a.rows()),
            actual: format!("dim {}", b.dim()),
        });
    }
    let l = cholesky(a)?;
    let n = a.rows();
    // Forward substitution: L y = b.
    let mut y = Vector::zeros(n);
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l.get(i, k) * y[k];
        }
        y[i] = acc / l.get(i, i);
    }
    // Back substitution: Lᵀ x = y.
    let mut x = Vector::zeros(n);
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l.get(k, i) * x[k];
        }
        x[i] = acc / l.get(i, i);
    }
    Ok(x)
}

/// Thin Householder QR factorization, returning `(Q, R)` with `Q` of shape
/// `m × n` (orthonormal columns) and `R` upper-triangular `n × n`.
///
/// # Errors
///
/// Returns [`LinalgError::Dimension`] when `m < n`.
// Index-driven by design: the Householder vector v and the factors R/Q are
// traversed over the same semantic row range k..m.
#[allow(clippy::needless_range_loop)]
pub fn householder_qr(a: &Matrix) -> Result<(Matrix, Matrix), LinalgError> {
    let m = a.rows();
    let n = a.cols();
    if m < n {
        return Err(LinalgError::Dimension {
            expected: format!("at least {n} rows"),
            actual: format!("{m} rows"),
        });
    }
    let mut r = a.clone();
    // Accumulate Q explicitly as an m×m product of reflectors applied to I,
    // truncated to the first n columns at the end.
    let mut q = Matrix::identity(m);

    for k in 0..n {
        // Build the Householder vector for column k of the trailing block.
        let mut norm_sq = 0.0;
        for i in k..m {
            norm_sq += r.get(i, k) * r.get(i, k);
        }
        let norm = norm_sq.sqrt();
        if norm < SINGULAR_TOL {
            continue; // Column already zero below the diagonal.
        }
        let alpha = if r.get(k, k) >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m];
        v[k] = r.get(k, k) - alpha;
        for i in (k + 1)..m {
            v[i] = r.get(i, k);
        }
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq < SINGULAR_TOL * SINGULAR_TOL {
            continue;
        }

        // Apply H = I − 2vvᵀ/‖v‖² to R (columns k..n).
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let factor = 2.0 * dot / v_norm_sq;
            for i in k..m {
                r.set(i, j, r.get(i, j) - factor * v[i]);
            }
        }
        // Apply H to Q from the right: Q ← Q·H.
        for i in 0..m {
            let mut dot = 0.0;
            for l in k..m {
                dot += q.get(i, l) * v[l];
            }
            let factor = 2.0 * dot / v_norm_sq;
            for l in k..m {
                q.set(i, l, q.get(i, l) - factor * v[l]);
            }
        }
    }

    // Thin factors.
    let q_thin = Matrix::from_fn(m, n, |i, j| q.get(i, j));
    let r_thin = Matrix::from_fn(n, n, |i, j| if j >= i { r.get(i, j) } else { 0.0 });
    Ok((q_thin, r_thin))
}

/// Solves the least-squares problem `min_x ‖A x − b‖` for a full-column-rank
/// `A` (possibly overdetermined) via Householder QR.
///
/// This computes the regression minimizers `x_S = (A_SᵀA_S)⁻¹A_SᵀB_S` of
/// Appendix J without explicitly forming the normal equations.
///
/// # Errors
///
/// Returns [`LinalgError::Dimension`] for shape mismatches and
/// [`LinalgError::Singular`] when `A` is (numerically) rank-deficient.
pub fn least_squares(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    if b.dim() != a.rows() {
        return Err(LinalgError::Dimension {
            expected: format!("dim {}", a.rows()),
            actual: format!("dim {}", b.dim()),
        });
    }
    let (q, r) = householder_qr(a)?;
    let n = a.cols();
    for i in 0..n {
        if r.get(i, i).abs() < SINGULAR_TOL {
            return Err(LinalgError::Singular);
        }
    }
    // x = R⁻¹ Qᵀ b via back substitution.
    let qtb = q.matvec_t(b)?;
    let mut x = Vector::zeros(n);
    for i in (0..n).rev() {
        let mut acc = qtb[i];
        for j in (i + 1)..n {
            acc -= r.get(i, j) * x[j];
        }
        x[i] = acc / r.get(i, i);
    }
    Ok(x)
}

/// Numerical rank of `A` (number of QR diagonal entries above `tol`).
///
/// Appendix J's 2f-redundancy argument rests on every stack `A_S` with
/// `|S| ≥ n − 2f` having full column rank.
///
/// # Errors
///
/// Returns [`LinalgError::Dimension`] when `A` has more columns than rows.
pub fn rank(a: &Matrix, tol: f64) -> Result<usize, LinalgError> {
    let (_, r) = householder_qr(a)?;
    Ok((0..a.cols()).filter(|&i| r.get(i, i).abs() > tol).count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x_true = Vector::from(vec![1.0, -2.0]);
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Vector::from(vec![2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&Vector::from(vec![3.0, 2.0]), 1e-12));
    }

    #[test]
    fn solve_rejects_bad_inputs() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &Vector::zeros(2)),
            Err(LinalgError::NotSquare { .. })
        ));
        let sq = Matrix::identity(2);
        assert!(matches!(
            solve(&sq, &Vector::zeros(3)),
            Err(LinalgError::Dimension { .. })
        ));
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            solve(&singular, &Vector::zeros(2)),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn determinant_matches_formula() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((determinant(&a).unwrap() - (-2.0)).abs() < 1e-12);
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(determinant(&singular).unwrap(), 0.0);
        assert!((determinant(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_under_permutation() {
        // Swapping rows of the identity flips the sign.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((determinant(&p).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn cholesky_round_trips() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn solve_spd_matches_general_solver() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0]);
        let x1 = solve(&a, &b).unwrap();
        let x2 = solve_spd(&a, &b).unwrap();
        assert!(x1.approx_eq(&x2, 1e-12));
    }

    #[test]
    fn qr_orthonormal_and_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let (q, r) = householder_qr(&a).unwrap();
        // QᵀQ = I.
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(2), 1e-10));
        // QR = A.
        let back = q.matmul(&r).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
        // R upper triangular.
        assert_eq!(r.get(1, 0), 0.0);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0], &[4.0, 1.0]]).unwrap();
        let b = Vector::from(vec![2.9, 5.1, 7.2, 8.8]);
        let x_qr = least_squares(&a, &b).unwrap();
        let x_ne = solve_spd(&a.gram(), &a.matvec_t(&b).unwrap()).unwrap();
        assert!(x_qr.approx_eq(&x_ne, 1e-9));
    }

    #[test]
    fn least_squares_exact_fit() {
        // Consistent system: residual must vanish.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x_true = Vector::from(vec![2.0, -1.0]);
        let b = a.matvec(&x_true).unwrap();
        let x = least_squares(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn least_squares_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            least_squares(&a, &Vector::zeros(3)),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn rank_detects_deficiency() {
        let full = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(rank(&full, 1e-9).unwrap(), 2);
        let deficient = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(rank(&deficient, 1e-9).unwrap(), 1);
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        let wide = Matrix::zeros(2, 3);
        assert!(householder_qr(&wide).is_err());
    }
}
