//! Dense row-major `f64` matrices.

use crate::error::LinalgError;
use crate::vector::Vector;
use std::fmt;

/// A dense matrix stored in row-major order.
///
/// # Example
///
/// ```
/// use abft_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), abft_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let x = Vector::from(vec![1.0, 1.0]);
/// assert_eq!(a.matvec(&x)?.as_slice(), &[3.0, 7.0]);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::Dimension {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// A square diagonal matrix with the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::Dimension`] for ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::Dimension {
                    expected: format!("{cols} columns"),
                    actual: format!("{} columns", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by stacking row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::Dimension`] for inconsistent dimensions.
    pub fn from_row_vectors(rows: &[Vector]) -> Result<Self, LinalgError> {
        let slices: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Self::from_rows(&slices)
    }

    /// Builds a matrix by evaluating `f` at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for square matrices.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    // LINT-ALLOW(panic-reach): the assert bounds both indices, so the flat
    // index below it stays inside `data`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    // LINT-ALLOW(panic-reach): the assert bounds both indices, so the flat
    // index below it stays inside `data`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    // LINT-ALLOW(panic-reach): the assert bounds `i`, so the slice
    // arithmetic below it stays inside `data`.
    pub fn row(&self, i: usize) -> &[f64] {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy row `i` into a [`Vector`].
    pub fn row_vector(&self, i: usize) -> Vector {
        Vector::from(self.row(i))
    }

    /// Copy column `j` into a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of bounds.
    pub fn col_vector(&self, j: usize) -> Vector {
        // LINT-ALLOW(no-panic-hot-path): documented panic contract for caller bugs, not a data-dependent failure
        assert!(j < self.cols, "column index out of bounds");
        Vector::from_fn(self.rows, |i| self.get(i, j))
    }

    /// Borrow the row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The transpose `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix product `A · B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] when inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::Dimension {
                expected: format!("{} rows", self.cols),
                actual: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `A · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] when `x.dim() != cols`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.dim() != self.cols {
            return Err(LinalgError::Dimension {
                expected: format!("dim {}", self.cols),
                actual: format!("dim {}", x.dim()),
            });
        }
        Ok(Vector::from_fn(self.rows, |i| {
            self.row(i).iter().zip(x.iter()).map(|(a, b)| a * b).sum()
        }))
    }

    /// Transposed matrix-vector product `Aᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] when `x.dim() != rows`.
    pub fn matvec_t(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.dim() != self.rows {
            return Err(LinalgError::Dimension {
                expected: format!("dim {}", self.rows),
                actual: format!("dim {}", x.dim()),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            for j in 0..self.cols {
                out[j] += self.get(i, j) * xi;
            }
        }
        Ok(out)
    }

    /// The Gram matrix `AᵀA` — used for the normal equations and for the
    /// convexity constants of Appendix J.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for k in 0..self.rows {
            let row = self.row(k);
            for i in 0..self.cols {
                for j in i..self.cols {
                    let v = row[i] * row[j];
                    out.data[i * self.cols + j] += v;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out.data[i * self.cols + j] = out.data[j * self.cols + i];
            }
        }
        out
    }

    /// Returns `self` scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * factor).collect(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] for shape mismatches.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::Dimension {
                expected: format!("{}x{}", self.rows, self.cols),
                actual: format!("{}x{}", other.rows, other.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Dimension`] for shape mismatches.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.add(&other.scale(-1.0))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }

    /// `true` when `self` and `other` agree entry-wise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// `true` when the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the sub-matrix formed by the given row indices (in order).
    ///
    /// This is how per-subset stacks `A_S` are formed from the full data
    /// matrix `A` in Appendix J.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(indices.len(), self.cols, |i, j| self.get(indices[i], j))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Matrix::new(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::new(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_diagonal() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.get(0, 0), 1.0);
        assert_eq!(i3.get(0, 1), 0.0);
        assert_eq!(i3.trace().unwrap(), 3.0);
        let d = Matrix::diagonal(&[2.0, 5.0]);
        assert_eq!(d.get(1, 1), 5.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert!(m.is_square());
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.row_vector(0).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.col_vector(1).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(0, 1), 3.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
        assert!(a.matmul(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = sample();
        let x = Vector::from(vec![1.0, -1.0]);
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[-1.0, -1.0]);
        assert!(a.matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let x = Vector::from(vec![1.0, 1.0, 1.0]);
        let direct = a.matvec_t(&x).unwrap();
        let via_transpose = a.transpose().matvec(&x).unwrap();
        assert!(direct.approx_eq(&via_transpose, 1e-12));
    }

    #[test]
    fn gram_is_a_transpose_a() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&expected, 1e-12));
        assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn elementwise_operations() {
        let a = sample();
        let b = Matrix::identity(2);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(0, 0), 2.0);
        let diff = sum.sub(&b).unwrap();
        assert!(diff.approx_eq(&a, 1e-12));
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
        assert_eq!(a.scale(2.0).get(1, 1), 8.0);
    }

    #[test]
    fn norms_and_trace() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.trace().unwrap(), 7.0);
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn symmetry_detection() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn select_rows_builds_subset_stack() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]).unwrap();
        let sub = a.select_rows(&[2, 0]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0), &[2.0, 2.0]);
        assert_eq!(sub.row(1), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(2, 0);
    }

    #[test]
    fn display_is_row_per_line() {
        let text = sample().to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("[1.000000, 2.000000]"));
    }

    #[test]
    fn from_fn_and_from_row_vectors() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        let rows = vec![Vector::from(vec![1.0]), Vector::from(vec![2.0])];
        let m = Matrix::from_row_vectors(&rows).unwrap();
        assert_eq!(m.col_vector(0).as_slice(), &[1.0, 2.0]);
    }
}
