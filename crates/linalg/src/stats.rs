//! Scalar descriptive statistics.
//!
//! The coordinate-wise trimmed mean filter (CWTM, eq. 24 of the paper)
//! reduces to [`trimmed_mean`] applied per coordinate; the coordinate-wise
//! median baseline reduces to [`median`].

use crate::error::LinalgError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn mean(values: &[f64]) -> Result<f64, LinalgError> {
    if values.is_empty() {
        return Err(LinalgError::Empty);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Unbiased sample variance (divides by `n − 1`; returns `0` for `n = 1`).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn variance(values: &[f64]) -> Result<f64, LinalgError> {
    let m = mean(values)?;
    if values.len() == 1 {
        return Ok(0.0);
    }
    Ok(values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn std_dev(values: &[f64]) -> Result<f64, LinalgError> {
    variance(values).map(f64::sqrt)
}

/// Median (average of the two middle order statistics for even length).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn median(values: &[f64]) -> Result<f64, LinalgError> {
    if values.is_empty() {
        return Err(LinalgError::Empty);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        Ok(sorted[n / 2])
    } else {
        Ok(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]))
    }
}

/// Trimmed mean: drops the `trim` smallest and `trim` largest values, then
/// averages the remainder.
///
/// With `trim = f` over `n` per-coordinate gradient entries this is exactly
/// the CWTM aggregation rule of the paper's eq. (24): average of the middle
/// `n − 2f` order statistics.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] when `values.len() <= 2 * trim` (nothing
/// would remain).
pub fn trimmed_mean(values: &[f64], trim: usize) -> Result<f64, LinalgError> {
    if values.len() <= 2 * trim {
        return Err(LinalgError::Empty);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let kept = &sorted[trim..sorted.len() - trim];
    mean(kept)
}

/// Allocation-free trimmed mean over a scratch buffer the caller owns:
/// drops the `trim` smallest and `trim` largest values via partial
/// selection (`O(n)` instead of a full sort) and averages the remainder.
/// The buffer is reordered arbitrarily.
///
/// This is the hot-path variant of [`trimmed_mean`] used by the CWTM
/// filter once per coordinate. The two keep exactly the same multiset of
/// values (the middle `n − 2·trim` order statistics), but the sum runs in
/// partition order rather than sorted order, so results may differ from
/// [`trimmed_mean`] by floating-point rounding on ill-conditioned inputs
/// (catastrophic-cancellation magnitudes). Within the batch pipeline this
/// is irrelevant — both the slice adapter and the batch path call this
/// function, so they stay bit-identical to each other.
///
/// Order statistics use [`f64::total_cmp`], so a NaN that reaches this
/// far sorts deterministically (to the extremes) instead of aborting —
/// aggregation callers still validate finiteness at the boundary, where a
/// clean `FilterError` is produced.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] when `values.len() <= 2 * trim`.
pub fn trimmed_mean_in_place(values: &mut [f64], trim: usize) -> Result<f64, LinalgError> {
    let n = values.len();
    if n <= 2 * trim {
        return Err(LinalgError::Empty);
    }
    let kept: &mut [f64] = if trim == 0 {
        values
    } else {
        // Partition the `trim` smallest off the front…
        let (_, _, upper) = values.select_nth_unstable_by(trim - 1, f64::total_cmp);
        // …then the `trim` largest off the back of what remains.
        let cut = upper.len() - trim;
        let (kept, _, _) = upper.select_nth_unstable_by(cut, f64::total_cmp);
        kept
    };
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Allocation-free median over a scratch buffer the caller owns (partial
/// selection; the buffer is reordered arbitrarily). Agrees exactly with
/// [`median`].
///
/// Order statistics use [`f64::total_cmp`] (see [`trimmed_mean_in_place`]
/// for the NaN behaviour).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn median_in_place(values: &mut [f64]) -> Result<f64, LinalgError> {
    let n = values.len();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let (lower, mid, _) = values.select_nth_unstable_by(n / 2, f64::total_cmp);
    let mid = *mid;
    if n % 2 == 1 {
        Ok(mid)
    } else {
        let below = lower.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(0.5 * (below + mid))
    }
}

/// `q`-quantile (linear interpolation between order statistics), `q ∈ [0,1]`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidQuantile`] when `q` is outside `[0, 1]`
/// (NaN included) and [`LinalgError::Empty`] for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, LinalgError> {
    if !(0.0..=1.0).contains(&q) {
        return Err(LinalgError::InvalidQuantile { q });
    }
    if values.is_empty() {
        return Err(LinalgError::Empty);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let w = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// Minimum of a non-empty slice.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn min(values: &[f64]) -> Result<f64, LinalgError> {
    values
        .iter()
        .copied()
        .reduce(f64::min)
        .ok_or(LinalgError::Empty)
}

/// Maximum of a non-empty slice.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn max(values: &[f64]) -> Result<f64, LinalgError> {
    values
        .iter()
        .copied()
        .reduce(f64::max)
        .ok_or(LinalgError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert_eq!(variance(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[5.0]).unwrap(), 5.0);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        // 100 and -100 are trimmed away.
        let xs = [1.0, 2.0, 3.0, 100.0, -100.0];
        assert_eq!(trimmed_mean(&xs, 1).unwrap(), 2.0);
        // trim = 0 is the plain mean.
        assert_eq!(trimmed_mean(&[1.0, 2.0, 3.0], 0).unwrap(), 2.0);
        // Nothing left after trimming.
        assert!(trimmed_mean(&[1.0, 2.0], 1).is_err());
        assert!(trimmed_mean(&[], 0).is_err());
    }

    #[test]
    fn trimmed_mean_matches_cwtm_semantics() {
        // n = 6, f = 1: average of the middle 4 order statistics.
        let xs = [6.0, 1.0, 3.0, 4.0, 2.0, 5.0];
        assert_eq!(trimmed_mean(&xs, 1).unwrap(), (2.0 + 3.0 + 4.0 + 5.0) / 4.0);
    }

    #[test]
    fn in_place_variants_agree_with_sorting_versions() {
        let xs = [6.0, 1.0, 3.0, 4.0, 2.0, 5.0, -9.0, 100.0];
        for trim in 0..=3 {
            let mut buf = xs.to_vec();
            // Same kept multiset; summation order may differ, so compare
            // up to floating-point rounding rather than bitwise.
            let in_place = trimmed_mean_in_place(&mut buf, trim).unwrap();
            let sorted = trimmed_mean(&xs, trim).unwrap();
            assert!(
                (in_place - sorted).abs() <= 1e-12 * sorted.abs().max(1.0),
                "trim = {trim}: {in_place} vs {sorted}"
            );
        }
        let mut buf = xs.to_vec();
        assert_eq!(median_in_place(&mut buf).unwrap(), median(&xs).unwrap());
        let odd = [3.0, 1.0, 2.0];
        let mut buf = odd.to_vec();
        assert_eq!(median_in_place(&mut buf).unwrap(), 2.0);
        let mut single = vec![5.0];
        assert_eq!(median_in_place(&mut single).unwrap(), 5.0);
    }

    #[test]
    fn in_place_variants_reject_degenerate_input() {
        assert!(trimmed_mean_in_place(&mut [1.0, 2.0], 1).is_err());
        assert!(trimmed_mean_in_place(&mut [], 0).is_err());
        assert!(median_in_place(&mut []).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn quantile_rejects_out_of_range_as_an_error() {
        for bad in [1.5, -0.1, f64::NAN, f64::INFINITY] {
            match quantile(&[1.0], bad) {
                Err(LinalgError::InvalidQuantile { q }) => {
                    assert!(q.is_nan() == bad.is_nan() && (q == bad || bad.is_nan()));
                }
                other => panic!("q = {bad} must be InvalidQuantile, got {other:?}"),
            }
        }
        // The range check fires before the emptiness check, so even a
        // degenerate call site gets the more specific error.
        assert!(matches!(
            quantile(&[], 2.0),
            Err(LinalgError::InvalidQuantile { .. })
        ));
    }

    #[test]
    fn order_statistics_tolerate_non_finite_values_without_panicking() {
        // Finiteness is validated at the aggregation boundary; these calls
        // exist to pin that a NaN reaching this far degrades to a value,
        // never to a process abort.
        let _ = median(&[f64::NAN, 1.0, 2.0]).unwrap();
        let _ = trimmed_mean(&[f64::NAN, 1.0, 2.0], 1).unwrap();
        let _ = trimmed_mean_in_place(&mut [f64::NAN, 1.0, 2.0], 1).unwrap();
        let _ = median_in_place(&mut [f64::NAN, 1.0, 2.0]).unwrap();
        let _ = quantile(&[f64::NAN, 1.0], 0.5).unwrap();
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 3.0);
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }
}
