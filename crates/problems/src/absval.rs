//! Scalar absolute-value costs — the non-differentiable family.
//!
//! `Q_i(x) = |x − c_i|` on ℝ. The minimizer set of a subset aggregate
//! `Σ_{i∈S} |x − c_i|` is the *median interval* of the centers `{c_i}`:
//! a single point for odd `|S|`, a closed interval for even `|S|`. This is
//! the workspace's concrete example of set-valued argmins, exercising the
//! Hausdorff-distance side of Definitions 2–3 and Theorems 1–2 (which the
//! paper states for possibly non-differentiable costs).

use crate::cost::CostFunction;
use abft_linalg::Vector;

/// The scalar cost `Q(x) = |x − center|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsoluteCost {
    center: f64,
}

impl AbsoluteCost {
    /// Creates the cost centred at `center`.
    pub fn new(center: f64) -> Self {
        AbsoluteCost { center }
    }

    /// The center `c`.
    pub fn center(&self) -> f64 {
        self.center
    }
}

impl CostFunction for AbsoluteCost {
    fn dim(&self) -> usize {
        1
    }

    // LINT-ALLOW(panic-reach): `dim() == 1`, and the harness evaluates
    // costs at the run's validated dimension.
    fn value(&self, x: &Vector) -> f64 {
        (x[0] - self.center).abs()
    }

    /// A subgradient: `sign(x − c)`, with `0` chosen at the kink.
    // LINT-ALLOW(panic-reach): `dim() == 1`, and the harness evaluates
    // costs at the run's validated dimension.
    fn gradient(&self, x: &Vector) -> Vector {
        let diff = x[0] - self.center;
        let sub = if diff > 0.0 {
            1.0
        } else if diff < 0.0 {
            -1.0
        } else {
            0.0
        };
        Vector::from(vec![sub])
    }
}

/// The minimizer set of `Σ_{i∈subset} |x − c_i|` over the given centers:
/// the closed median interval `[lo, hi]` (with `lo == hi` for odd counts).
///
/// # Panics
///
/// Panics when `centers` is empty.
pub fn median_interval(centers: &[f64]) -> (f64, f64) {
    assert!(!centers.is_empty(), "median interval of no centers");
    let mut sorted = centers.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        let m = sorted[n / 2];
        (m, m)
    } else {
        (sorted[n / 2 - 1], sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_subgradient() {
        let cost = AbsoluteCost::new(2.0);
        assert_eq!(cost.value(&Vector::from(vec![5.0])), 3.0);
        assert_eq!(cost.value(&Vector::from(vec![-1.0])), 3.0);
        assert_eq!(cost.gradient(&Vector::from(vec![5.0]))[0], 1.0);
        assert_eq!(cost.gradient(&Vector::from(vec![-1.0]))[0], -1.0);
        assert_eq!(cost.gradient(&Vector::from(vec![2.0]))[0], 0.0);
        assert_eq!(cost.center(), 2.0);
        assert_eq!(cost.dim(), 1);
    }

    #[test]
    fn odd_count_median_is_a_point() {
        assert_eq!(median_interval(&[3.0, 1.0, 2.0]), (2.0, 2.0));
        assert_eq!(median_interval(&[7.0]), (7.0, 7.0));
    }

    #[test]
    fn even_count_median_is_an_interval() {
        assert_eq!(median_interval(&[1.0, 2.0, 3.0, 4.0]), (2.0, 3.0));
        assert_eq!(median_interval(&[10.0, 0.0]), (0.0, 10.0));
    }

    #[test]
    fn interval_minimizes_the_aggregate() {
        let centers = [0.0, 1.0, 4.0, 9.0];
        let (lo, hi) = median_interval(&centers);
        let aggregate = |x: f64| centers.iter().map(|c| (x - c).abs()).sum::<f64>();
        let inside = aggregate(0.5 * (lo + hi));
        // Every point of the interval achieves the same (minimal) value.
        assert!((aggregate(lo) - inside).abs() < 1e-12);
        assert!((aggregate(hi) - inside).abs() < 1e-12);
        // Points outside are strictly worse.
        assert!(aggregate(lo - 0.5) > inside);
        assert!(aggregate(hi + 0.5) > inside);
    }

    #[test]
    #[should_panic(expected = "no centers")]
    fn empty_median_panics() {
        let _ = median_interval(&[]);
    }
}
