//! Huber-loss regression costs.
//!
//! A smooth (Lipschitz-gradient) but only weakly convex family used by
//! extension experiments — it violates Assumption 3 globally, which lets the
//! test suite probe how the DGD + filter machinery degrades when strong
//! convexity holds only near the minimizer.

use crate::cost::CostFunction;
use crate::error::ProblemError;
use abft_linalg::Vector;

/// Huber regression cost for one data row:
///
/// `Q(x) = ρ_δ(B − A·x)` with
/// `ρ_δ(r) = r²/2` for `|r| ≤ δ`, and `δ(|r| − δ/2)` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct HuberCost {
    row: Vector,
    observation: f64,
    delta: f64,
}

impl HuberCost {
    /// Creates the cost from a data row, observation, and transition width.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Shape`] when `delta <= 0`.
    pub fn new(row: Vector, observation: f64, delta: f64) -> Result<Self, ProblemError> {
        if delta <= 0.0 {
            return Err(ProblemError::Shape {
                expected: "delta > 0".into(),
                actual: format!("delta = {delta}"),
            });
        }
        Ok(HuberCost {
            row,
            observation,
            delta,
        })
    }

    /// The Huber function `ρ_δ`.
    fn rho(&self, r: f64) -> f64 {
        if r.abs() <= self.delta {
            0.5 * r * r
        } else {
            self.delta * (r.abs() - 0.5 * self.delta)
        }
    }

    /// The derivative `ρ'_δ` (the clipped residual).
    fn rho_prime(&self, r: f64) -> f64 {
        r.clamp(-self.delta, self.delta)
    }
}

impl CostFunction for HuberCost {
    fn dim(&self) -> usize {
        self.row.dim()
    }

    fn value(&self, x: &Vector) -> f64 {
        self.rho(self.observation - self.row.dot(x))
    }

    fn gradient(&self, x: &Vector) -> Vector {
        let r = self.observation - self.row.dot(x);
        // d/dx ρ(B − A·x) = −ρ'(r)·A.
        self.row.scale(-self.rho_prime(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::finite_difference_gradient;

    #[test]
    fn construction_validates_delta() {
        assert!(HuberCost::new(Vector::ones(2), 0.0, 0.0).is_err());
        assert!(HuberCost::new(Vector::ones(2), 0.0, -1.0).is_err());
        assert!(HuberCost::new(Vector::ones(2), 0.0, 1.0).is_ok());
    }

    #[test]
    fn quadratic_inside_linear_outside() {
        let cost = HuberCost::new(Vector::from(vec![1.0]), 0.0, 1.0).unwrap();
        // Inside: |r| = 0.5 ≤ δ, value = r²/2.
        assert!((cost.value(&Vector::from(vec![0.5])) - 0.125).abs() < 1e-12);
        // Outside: |r| = 3, value = δ(|r| − δ/2) = 2.5.
        assert!((cost.value(&Vector::from(vec![3.0])) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let cost = HuberCost::new(Vector::from(vec![0.8, -0.5]), 1.2, 0.7).unwrap();
        for probe in [
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![5.0, 5.0]),  // linear regime
            Vector::from(vec![1.0, -0.2]), // quadratic regime
        ] {
            let fd = finite_difference_gradient(&cost, &probe, 1e-6);
            assert!(fd.approx_eq(&cost.gradient(&probe), 1e-5));
        }
    }

    #[test]
    fn gradient_norm_is_bounded() {
        // Huber gradients are bounded by δ·‖A‖ regardless of x — unlike the
        // quadratic costs. This boundedness is what makes Huber interesting
        // for filter stress tests.
        let row = Vector::from(vec![0.6, 0.8]);
        let cost = HuberCost::new(row.clone(), 0.0, 2.0).unwrap();
        for scale in [1.0, 10.0, 1e6] {
            let x = Vector::from(vec![scale, scale]);
            assert!(cost.gradient(&x).norm() <= 2.0 * row.norm() + 1e-12);
        }
    }

    #[test]
    fn continuous_at_transition() {
        let cost = HuberCost::new(Vector::from(vec![1.0]), 0.0, 1.0).unwrap();
        let inside = cost.value(&Vector::from(vec![1.0 - 1e-9]));
        let outside = cost.value(&Vector::from(vec![1.0 + 1e-9]));
        assert!((inside - outside).abs() < 1e-6);
    }
}
