//! Regularized logistic-regression costs.
//!
//! Used by extension experiments: a differentiable, strongly convex (thanks
//! to the L2 term) cost family beyond the paper's quadratics, exercising the
//! DGD + gradient-filter machinery on a non-quadratic landscape.

use crate::cost::CostFunction;
use crate::error::ProblemError;
use abft_linalg::{Matrix, Vector};

/// Binary logistic regression with L2 regularization:
///
/// `Q(x) = (1/m)·Σ_k log(1 + exp(−y_k ⟨z_k, x⟩)) + (reg/2)·‖x‖²`
///
/// with features `z_k ∈ ℝᵈ` and labels `y_k ∈ {−1, +1}`.
///
/// The gradient is `(1/m)·Σ_k −y_k·σ(−y_k⟨z_k,x⟩)·z_k + reg·x` where `σ` is
/// the logistic sigmoid. The cost is `reg`-strongly convex and has
/// `(λ_max(ZᵀZ)/(4m) + reg)`-Lipschitz gradients.
#[derive(Debug, Clone)]
pub struct LogisticCost {
    features: Matrix,
    labels: Vec<f64>,
    reg: f64,
}

impl LogisticCost {
    /// Creates the cost from a feature matrix (one row per sample), ±1
    /// labels, and a regularization strength.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Shape`] when the label count mismatches the
    /// row count, a label is not ±1, `reg < 0`, or there are no samples.
    pub fn new(features: Matrix, labels: Vec<f64>, reg: f64) -> Result<Self, ProblemError> {
        if features.rows() == 0 {
            return Err(ProblemError::Shape {
                expected: "at least one sample".into(),
                actual: "0 samples".into(),
            });
        }
        if labels.len() != features.rows() {
            return Err(ProblemError::Shape {
                expected: format!("{} labels", features.rows()),
                actual: format!("{} labels", labels.len()),
            });
        }
        if labels.iter().any(|&y| y != 1.0 && y != -1.0) {
            return Err(ProblemError::Shape {
                expected: "labels in {-1, +1}".into(),
                actual: "other label values".into(),
            });
        }
        if reg < 0.0 {
            return Err(ProblemError::Shape {
                expected: "reg >= 0".into(),
                actual: format!("reg = {reg}"),
            });
        }
        Ok(LogisticCost {
            features,
            labels,
            reg,
        })
    }

    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.features.rows()
    }

    /// Strong-convexity constant contributed by the regularizer.
    pub fn strong_convexity(&self) -> f64 {
        self.reg
    }

    /// `log(1 + exp(t))` computed without overflow.
    fn log1p_exp(t: f64) -> f64 {
        if t > 0.0 {
            t + (1.0 + (-t).exp()).ln()
        } else {
            (1.0 + t.exp()).ln()
        }
    }

    /// The logistic sigmoid `1/(1 + exp(−t))` computed without overflow.
    fn sigmoid(t: f64) -> f64 {
        if t >= 0.0 {
            1.0 / (1.0 + (-t).exp())
        } else {
            let e = t.exp();
            e / (1.0 + e)
        }
    }
}

impl CostFunction for LogisticCost {
    fn dim(&self) -> usize {
        self.features.cols()
    }

    // LINT-ALLOW(panic-reach): `k` enumerates `0..samples()`, and labels
    // and feature rows share that length by construction.
    fn value(&self, x: &Vector) -> f64 {
        let m = self.samples() as f64;
        let mut total = 0.0;
        for k in 0..self.samples() {
            let margin = self.labels[k] * self.features.row_vector(k).dot(x);
            total += Self::log1p_exp(-margin);
        }
        total / m + 0.5 * self.reg * x.norm_sq()
    }

    // LINT-ALLOW(panic-reach): `k` enumerates `0..samples()`, and labels
    // and feature rows share that length by construction.
    fn gradient(&self, x: &Vector) -> Vector {
        let m = self.samples() as f64;
        let mut grad = x.scale(self.reg);
        for k in 0..self.samples() {
            let z = self.features.row_vector(k);
            let y = self.labels[k];
            let margin = y * z.dot(x);
            // d/dx log(1+exp(−y⟨z,x⟩)) = −y σ(−y⟨z,x⟩) z.
            let weight = -y * Self::sigmoid(-margin) / m;
            grad.axpy(weight, &z);
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::finite_difference_gradient;

    fn toy_cost() -> LogisticCost {
        let features =
            Matrix::from_rows(&[&[1.0, 0.2], &[0.9, -0.1], &[-1.1, 0.3], &[-0.8, -0.4]]).unwrap();
        let labels = vec![1.0, 1.0, -1.0, -1.0];
        LogisticCost::new(features, labels, 0.1).unwrap()
    }

    #[test]
    fn construction_validates() {
        let f = Matrix::identity(2);
        assert!(LogisticCost::new(f.clone(), vec![1.0], 0.1).is_err()); // label count
        assert!(LogisticCost::new(f.clone(), vec![1.0, 0.5], 0.1).is_err()); // label values
        assert!(LogisticCost::new(f.clone(), vec![1.0, -1.0], -0.1).is_err()); // negative reg
        assert!(LogisticCost::new(f, vec![1.0, -1.0], 0.1).is_ok());
        assert!(LogisticCost::new(Matrix::zeros(0, 2), vec![], 0.1).is_err()); // empty
    }

    #[test]
    fn value_at_zero_is_log_two_plus_reg() {
        let cost = toy_cost();
        let x = Vector::zeros(2);
        // Each term is log 2 at x = 0; regularizer vanishes.
        assert!((cost.value(&x) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let cost = toy_cost();
        for probe in [
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![1.5, -0.7]),
            Vector::from(vec![-20.0, 30.0]), // stresses the overflow-safe forms
        ] {
            let fd = finite_difference_gradient(&cost, &probe, 1e-6);
            let analytic = cost.gradient(&probe);
            assert!(
                fd.approx_eq(&analytic, 1e-5),
                "fd {fd} vs analytic {analytic} at {probe}"
            );
        }
    }

    #[test]
    fn descent_reduces_value() {
        let cost = toy_cost();
        let mut x = Vector::zeros(2);
        let v0 = cost.value(&x);
        for _ in 0..200 {
            let g = cost.gradient(&x);
            x.axpy(-0.5, &g);
        }
        let v1 = cost.value(&x);
        assert!(v1 < v0, "descent failed: {v0} -> {v1}");
        // The separable toy data should be classified correctly.
        assert!(x[0] > 0.0);
    }

    #[test]
    fn overflow_safe_helpers() {
        assert!((LogisticCost::log1p_exp(1000.0) - 1000.0).abs() < 1e-9);
        assert!(LogisticCost::log1p_exp(-1000.0).abs() < 1e-9);
        assert!((LogisticCost::sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(LogisticCost::sigmoid(-1000.0).abs() < 1e-12);
        assert!((LogisticCost::sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strong_convexity_reported() {
        assert_eq!(toy_cost().strong_convexity(), 0.1);
    }
}
