//! Smoothness and strong-convexity analysis (Assumptions 2 and 3).
//!
//! Appendix J derives, for the regression costs `Q_i(x) = (B_i − A_i x)²`:
//!
//! * smoothness: `∇Q_i` is Lipschitz with constant `µ_i = 2·λ_max(A_iᵀA_i)`,
//! * strong convexity: the *average* cost over a set `S`,
//!   `(1/|S|)·Σ_{i∈S} Q_i`, is strongly convex with
//!   `γ_S = 2·λ_min(A_SᵀA_S)/|S|`.
//!
//! The paper quotes these with and without the calculus factor 2 (Section 5
//! vs Appendix J); this module computes the *true* constants of the actual
//! gradients (factor 2 included), which are the ones that make the Section-5
//! values `µ = 2`, `γ = 0.712` come out.

use crate::cost::CostFunction;
use crate::error::ProblemError;
use crate::regression::RegressionProblem;
use abft_core::subsets::KSubsets;
use abft_linalg::sym_eigenvalues;

/// The `(µ, γ)` pair of Assumptions 2–3 for a concrete problem instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvexityConstants {
    /// Lipschitz-smoothness constant `µ` (Assumption 2): max over agents.
    pub mu: f64,
    /// Strong-convexity constant `γ` (Assumption 3): min over all
    /// `(n−f)`-subsets of the average-cost convexity.
    pub gamma: f64,
}

impl ConvexityConstants {
    /// The ratio `µ/γ ≥ 1` (Appendix C proves `γ ≤ µ`).
    pub fn condition_ratio(&self) -> f64 {
        self.mu / self.gamma
    }
}

/// Smoothness constant `µ = max_i 2·λ_max(A_iᵀA_i) = max_i 2‖A_i‖²`.
///
/// For the paper's unit-norm leading rows this evaluates to `2`, matching
/// Section 5.
pub fn smoothness_constant(problem: &RegressionProblem) -> f64 {
    (0..problem.config().n())
        .map(|i| problem.agent_cost(i).smoothness())
        .fold(0.0, f64::max)
}

/// Strong-convexity constant
/// `γ = min_{|S| = n−f} 2·λ_min(A_SᵀA_S) / |S|`
/// of the average cost over any honest quorum (Assumption 3).
///
/// For the paper's instance this evaluates to `0.712`, matching Section 5.
///
/// # Errors
///
/// Returns [`ProblemError::Linalg`] if an eigendecomposition fails
/// (degenerate input shapes).
pub fn strong_convexity_constant(problem: &RegressionProblem) -> Result<f64, ProblemError> {
    let n = problem.config().n();
    let quorum = problem.config().honest_quorum();
    let mut gamma = f64::INFINITY;
    for subset in KSubsets::new(n, quorum) {
        let a_s = problem.matrix().select_rows(&subset);
        let eig = sym_eigenvalues(&a_s.gram())?;
        let gamma_s = 2.0 * eig.min() / quorum as f64;
        gamma = gamma.min(gamma_s);
    }
    Ok(gamma)
}

/// Computes both constants of Assumptions 2–3 for a regression instance.
///
/// # Errors
///
/// Returns [`ProblemError::Linalg`] if an eigendecomposition fails.
pub fn convexity_constants(
    problem: &RegressionProblem,
) -> Result<ConvexityConstants, ProblemError> {
    Ok(ConvexityConstants {
        mu: smoothness_constant(problem),
        gamma: strong_convexity_constant(problem)?,
    })
}

/// The gradient-diversity constant `λ` of Assumption 5, estimated
/// empirically: the smallest `λ` such that
/// `‖∇Q_i(x) − ∇Q_j(x)‖ ≤ λ·max(‖∇Q_i(x)‖, ‖∇Q_j(x)‖)` over all honest
/// pairs `(i, j)` and all probe points. By the triangle inequality `λ ≤ 2`
/// always; the CWTM guarantee of Theorem 6 needs `λ < γ/(µ√d)`.
///
/// Probes are the corners and center of the box `[-probe_radius, probe_radius]^d`.
pub fn gradient_diversity(problem: &RegressionProblem, honest: &[usize], probe_radius: f64) -> f64 {
    use abft_linalg::Vector;
    let d = problem.dim();
    // Probe points: center plus the 2^d corners of the box (capped for high d).
    let mut probes = vec![Vector::zeros(d)];
    let corner_count = 1usize << d.min(10);
    for mask in 0..corner_count {
        probes.push(Vector::from_fn(d, |j| {
            if mask >> j & 1 == 1 {
                probe_radius
            } else {
                -probe_radius
            }
        }));
    }

    let mut lambda: f64 = 0.0;
    for x in &probes {
        let grads: Vec<Vector> = honest
            .iter()
            .map(|&i| problem.agent_cost(i).gradient(x))
            .collect();
        for (p, gi) in grads.iter().enumerate() {
            for gj in grads.iter().skip(p + 1) {
                let denom = gi.norm().max(gj.norm());
                if denom > 1e-12 {
                    lambda = lambda.max((gi - gj).norm() / denom);
                }
            }
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_smoothness_is_two() {
        let p = RegressionProblem::paper_instance();
        let mu = smoothness_constant(&p);
        assert!((mu - 2.0).abs() < 1e-12, "mu = {mu}, paper says 2");
    }

    #[test]
    fn paper_strong_convexity_matches_section_5() {
        let p = RegressionProblem::paper_instance();
        let gamma = strong_convexity_constant(&p).unwrap();
        assert!(
            (gamma - 0.712).abs() < 5e-4,
            "gamma = {gamma}, paper says 0.712"
        );
    }

    #[test]
    fn gamma_never_exceeds_mu() {
        // Appendix C: under Assumptions 2 and 3 simultaneously, γ ≤ µ.
        let p = RegressionProblem::paper_instance();
        let c = convexity_constants(&p).unwrap();
        assert!(c.gamma <= c.mu);
        assert!(c.condition_ratio() >= 1.0);
    }

    #[test]
    fn constants_scale_with_data() {
        let p = RegressionProblem::paper_instance();
        let scaled = RegressionProblem::new(
            *p.config(),
            p.matrix().scale(2.0),
            p.observations().scale(2.0),
        )
        .unwrap();
        // Rows scaled by 2 ⇒ AᵀA scales by 4 ⇒ µ and γ scale by 4.
        let c = convexity_constants(&p).unwrap();
        let cs = convexity_constants(&scaled).unwrap();
        assert!((cs.mu - 4.0 * c.mu).abs() < 1e-9);
        assert!((cs.gamma - 4.0 * c.gamma).abs() < 1e-9);
    }

    #[test]
    fn strong_convexity_is_the_minimum_over_quorums() {
        // With f = 0 there is a single subset (everyone) and γ is just
        // 2 λ_min(AᵀA)/n.
        let p = RegressionProblem::paper_instance();
        let cfg0 = abft_core::SystemConfig::new(6, 0).unwrap();
        let p0 =
            RegressionProblem::new(cfg0, p.matrix().clone(), p.observations().clone()).unwrap();
        let gamma0 = strong_convexity_constant(&p0).unwrap();
        let eig = abft_linalg::sym_eigenvalues(&p.matrix().gram()).unwrap();
        assert!((gamma0 - 2.0 * eig.min() / 6.0).abs() < 1e-10);
        // Tolerating a fault can only shrink γ (minimum over more, smaller sets).
        let gamma1 = strong_convexity_constant(&p).unwrap();
        assert!(gamma1 <= gamma0 + 1e-12);
    }

    #[test]
    fn empirical_strong_convexity_inequality_holds() {
        // ⟨∇Q_H(x) − ∇Q_H(y), x − y⟩ ≥ γ ‖x − y‖² on probe pairs.
        use abft_linalg::Vector;
        let p = RegressionProblem::paper_instance();
        let gamma = strong_convexity_constant(&p).unwrap();
        let honest = [1usize, 2, 3, 4, 5];
        let pairs = [
            (Vector::from(vec![0.0, 0.0]), Vector::from(vec![1.0, 1.0])),
            (Vector::from(vec![-3.0, 2.0]), Vector::from(vec![0.5, -1.5])),
            (
                Vector::from(vec![10.0, -10.0]),
                Vector::from(vec![-10.0, 10.0]),
            ),
        ];
        for (x, y) in &pairs {
            let mut gx = Vector::zeros(2);
            let mut gy = Vector::zeros(2);
            for &i in &honest {
                gx += &p.agent_cost(i).gradient(x);
                gy += &p.agent_cost(i).gradient(y);
            }
            // Assumption 3 is about the average cost: divide by |H|.
            gx.scale_mut(1.0 / honest.len() as f64);
            gy.scale_mut(1.0 / honest.len() as f64);
            let lhs = (&gx - &gy).dot(&(x - y));
            let rhs = gamma * (x - y).norm_sq();
            assert!(
                lhs >= rhs - 1e-9,
                "strong convexity violated: {lhs} < {rhs}"
            );
        }
    }

    #[test]
    fn gradient_diversity_is_at_most_two() {
        let p = RegressionProblem::paper_instance();
        let lambda = gradient_diversity(&p, &[1, 2, 3, 4, 5], 10.0);
        assert!(lambda <= 2.0 + 1e-9, "triangle inequality bound violated");
        assert!(lambda > 0.0);
    }
}
