//! Cost-function substrate for the `approx-bft` workspace.
//!
//! Each agent `i` in the paper holds a local cost `Q_i : ℝᵈ → ℝ`. This crate
//! provides the [`CostFunction`] abstraction, the concrete cost families used
//! by the paper's evaluation (quadratic regression costs, Appendix J's exact
//! dataset), additional differentiable families for extension experiments
//! (logistic, Huber), a non-differentiable scalar family (absolute-value
//! costs, whose subset minimizers are median *intervals* — exercising the
//! set-valued side of Theorems 1–2), and the convexity analysis that yields
//! the paper's smoothness/strong-convexity constants `µ` and `γ`.
//!
//! # Example
//!
//! ```
//! use abft_problems::regression::RegressionProblem;
//!
//! # fn main() -> Result<(), abft_problems::ProblemError> {
//! let problem = RegressionProblem::paper_instance();
//! // Honest agents per the paper's Section 5: all but agent 0.
//! let x_h = problem.subset_minimizer(&[1, 2, 3, 4, 5])?;
//! assert!((x_h[0] - 1.0780).abs() < 5e-4);
//! assert!((x_h[1] - 0.9825).abs() < 5e-4);
//! # Ok(())
//! # }
//! ```

pub mod absval;
pub mod analysis;
pub mod cost;
pub mod error;
pub mod huber;
pub mod logistic;
pub mod quadratic;
pub mod regression;

pub use analysis::ConvexityConstants;
pub use cost::{
    finite_difference_gradient, total_gradient, total_value, AggregateCost, CostFunction,
    SharedCost,
};
pub use error::ProblemError;
pub use quadratic::{QuadraticCost, ScalarRegressionCost};
pub use regression::RegressionProblem;

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::analysis::ConvexityConstants;
    pub use crate::cost::{total_gradient, total_value, CostFunction, SharedCost};
    pub use crate::error::ProblemError;
    pub use crate::quadratic::{QuadraticCost, ScalarRegressionCost};
    pub use crate::regression::RegressionProblem;
}
