//! Distributed linear regression problems, including the paper's exact
//! Appendix-J instance and a generator for random instances with
//! redundancy-by-construction.

use crate::cost::SharedCost;
use crate::error::ProblemError;
use crate::quadratic::ScalarRegressionCost;
use abft_core::subsets::KSubsets;
use abft_core::SystemConfig;
use abft_linalg::rng::{gaussian_vector, random_unit_vector, seeded_rng};
use abft_linalg::solve::rank;
use abft_linalg::{least_squares, Matrix, Vector};
use std::sync::Arc;

/// Retry budget for random instance generation.
const GENERATION_ATTEMPTS: usize = 32;

/// A distributed linear regression problem: agent `i` holds the row `A_i`
/// and observation `B_i`, and its cost is `Q_i(x) = (B_i − A_i x)²`.
///
/// # Example
///
/// ```
/// use abft_problems::RegressionProblem;
///
/// # fn main() -> Result<(), abft_problems::ProblemError> {
/// let p = RegressionProblem::paper_instance();
/// assert_eq!(p.config().n(), 6);
/// assert_eq!(p.dim(), 2);
/// // Every subset of ≥ n−2f = 4 agents has a full-rank stack.
/// assert!(p.all_redundancy_stacks_full_rank()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RegressionProblem {
    config: SystemConfig,
    a: Matrix,
    b: Vector,
}

impl RegressionProblem {
    /// Creates a problem from the stacked data `(A, B)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Shape`] when `A` does not have `config.n()`
    /// rows or `B` a matching length.
    pub fn new(config: SystemConfig, a: Matrix, b: Vector) -> Result<Self, ProblemError> {
        if a.rows() != config.n() || b.dim() != config.n() {
            return Err(ProblemError::Shape {
                expected: format!("{} rows in A and entries in B", config.n()),
                actual: format!("{} rows, {} entries", a.rows(), b.dim()),
            });
        }
        Ok(RegressionProblem { config, a, b })
    }

    /// The exact instance of the paper's Appendix J: `n = 6`, `d = 2`,
    /// `f = 1`, with `B = A·(1,1)ᵀ + N` for the fixed noise `N` (eq. 132).
    pub fn paper_instance() -> Self {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.8, 0.5],
            &[0.5, 0.8],
            &[0.0, 1.0],
            &[-0.5, 0.8],
            &[-0.8, 0.5],
        ])
        .expect("paper matrix is well-formed");
        let b = Vector::from(vec![0.9108, 1.3349, 1.3376, 1.0033, 0.2142, -0.3615]);
        let config = SystemConfig::new(6, 1).expect("n=6, f=1 is admissible");
        RegressionProblem { config, a, b }
    }

    /// The paper's fixed noise vector `N` (eq. 132), satisfying
    /// `B = A·x* + N`.
    pub fn paper_noise() -> Vector {
        Vector::from(vec![-0.0892, 0.0349, 0.0376, 0.0033, -0.0858, -0.0615])
    }

    /// The paper's ground-truth parameter `x* = (1, 1)ᵀ`.
    pub fn paper_ground_truth() -> Vector {
        Vector::from(vec![1.0, 1.0])
    }

    /// Generates a random instance with redundancy by construction:
    /// unit-norm rows `A_i`, `B = A·x* + N(0, noise_std²)` noise, retrying
    /// until every `(n − 2f)`-subset stack has full column rank (which holds
    /// almost surely for continuous rows).
    ///
    /// With `noise_std = 0` the instance satisfies exact `2f`-redundancy:
    /// every large-enough subset recovers `x*` exactly, so the measured
    /// `(2f, ε)`-redundancy has `ε = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::GenerationFailed`] if no full-rank instance is
    /// found within the retry budget (practically impossible for `n ≥ d`),
    /// or [`ProblemError::Shape`] when `x_star.dim() != dim` or
    /// `config.redundancy_quorum() < dim`.
    pub fn random(
        config: SystemConfig,
        dim: usize,
        x_star: &Vector,
        noise_std: f64,
        seed: u64,
    ) -> Result<Self, ProblemError> {
        if x_star.dim() != dim {
            return Err(ProblemError::Shape {
                expected: format!("x_star of dim {dim}"),
                actual: format!("dim {}", x_star.dim()),
            });
        }
        if config.redundancy_quorum() < dim {
            return Err(ProblemError::Shape {
                expected: format!("n - 2f >= d = {dim} (else no subset stack can be full rank)"),
                actual: format!("n - 2f = {}", config.redundancy_quorum()),
            });
        }
        let mut rng = seeded_rng(seed);
        for attempt in 0..GENERATION_ATTEMPTS {
            let rows: Vec<Vector> = (0..config.n())
                .map(|_| random_unit_vector(&mut rng, dim))
                .collect();
            let a = Matrix::from_row_vectors(&rows).expect("consistent rows");
            let noise = gaussian_vector(&mut rng, config.n(), 0.0, noise_std);
            let b = &a.matvec(x_star).expect("dims match") + &noise;
            let candidate = RegressionProblem { config, a, b };
            if candidate.all_redundancy_stacks_full_rank()? {
                return Ok(candidate);
            }
            let _ = attempt;
        }
        Err(ProblemError::GenerationFailed {
            reason: "could not draw rows with all (n-2f)-subset stacks full rank".into(),
            attempts: GENERATION_ATTEMPTS,
        })
    }

    /// Generates a "fan" instance generalizing the paper's geometry to any
    /// `n`: the rows are unit vectors `(cos θ_i, sin θ_i)` with angles evenly
    /// spread over `[0, spread_degrees]`, and `B = A·(1,1)ᵀ + N(0, σ²)`.
    ///
    /// The paper's own 6 rows are exactly this fan with a 150° spread. The
    /// geometry balances the two theory conditions: angles spread enough for
    /// strong convexity (CGE's `α > 0`) yet coherent enough for moderate
    /// gradient diversity (CWTM's `λ` requirement). Always `d = 2`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Shape`] when `n − 2f < 2` or
    /// `spread_degrees` lies outside `(0, 180)` (beyond which rows repeat
    /// directions and subset stacks can degenerate).
    pub fn fan(
        config: SystemConfig,
        spread_degrees: f64,
        noise_std: f64,
        seed: u64,
    ) -> Result<Self, ProblemError> {
        if config.redundancy_quorum() < 2 {
            return Err(ProblemError::Shape {
                expected: "n - 2f >= d = 2".to_string(),
                actual: format!("n - 2f = {}", config.redundancy_quorum()),
            });
        }
        if !(spread_degrees > 0.0 && spread_degrees < 180.0) {
            return Err(ProblemError::Shape {
                expected: "spread in (0, 180) degrees".to_string(),
                actual: format!("{spread_degrees}"),
            });
        }
        let n = config.n();
        let rows: Vec<Vector> = (0..n)
            .map(|i| {
                let theta = if n == 1 {
                    0.0
                } else {
                    spread_degrees.to_radians() * i as f64 / (n - 1) as f64
                };
                Vector::from(vec![theta.cos(), theta.sin()])
            })
            .collect();
        let a = Matrix::from_row_vectors(&rows).expect("consistent rows");
        let mut rng = seeded_rng(seed);
        let noise = gaussian_vector(&mut rng, n, 0.0, noise_std);
        let x_star = Vector::from(vec![1.0, 1.0]);
        let b = &a.matvec(&x_star).expect("dims match") + &noise;
        Ok(RegressionProblem { config, a, b })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Decision dimension `d`.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// The stacked data matrix `A` (one row per agent).
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The stacked observations `B`.
    pub fn observations(&self) -> &Vector {
        &self.b
    }

    /// Agent `i`'s cost `Q_i(x) = (B_i − A_i x)²`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n`.
    // LINT-ALLOW(panic-reach): documented panic contract — the assert
    // bounds `i` before the row and label lookups.
    pub fn agent_cost(&self, i: usize) -> ScalarRegressionCost {
        assert!(i < self.config.n(), "agent index out of range");
        ScalarRegressionCost::new(self.a.row_vector(i), self.b[i])
    }

    /// All agents' costs as shareable handles.
    pub fn costs(&self) -> Vec<SharedCost> {
        (0..self.config.n())
            .map(|i| Arc::new(self.agent_cost(i)) as SharedCost)
            .collect()
    }

    /// The unique minimizer `x_S = argmin Σ_{i∈S}(B_i − A_i x)²` of a subset
    /// aggregate, via least squares on the stack `(A_S, B_S)` (eq. 137).
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Linalg`] when the stack is rank-deficient
    /// (subset too small or degenerate).
    pub fn subset_minimizer(&self, subset: &[usize]) -> Result<Vector, ProblemError> {
        let a_s = self.a.select_rows(subset);
        let b_s = Vector::from_fn(subset.len(), |k| self.b[subset[k]]);
        Ok(least_squares(&a_s, &b_s)?)
    }

    /// Aggregate loss `Σ_{i∈subset} (B_i − A_i x)² = ‖B_S − A_S x‖²`.
    pub fn subset_loss(&self, subset: &[usize], x: &Vector) -> f64 {
        subset
            .iter()
            .map(|&i| {
                let r = self.b[i] - self.a.row_vector(i).dot(x);
                r * r
            })
            .sum()
    }

    /// Checks that every subset of size ≥ `n − 2f` yields a full-column-rank
    /// stack `A_S` — the rank condition (eq. 135) under which all subset
    /// minimizers are unique.
    ///
    /// It suffices to check the subsets of size exactly `n − 2f`: adding
    /// rows never reduces rank.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Linalg`] if a rank computation fails (stack
    /// with fewer rows than columns).
    pub fn all_redundancy_stacks_full_rank(&self) -> Result<bool, ProblemError> {
        let k = self.config.redundancy_quorum();
        if k < self.dim() {
            return Ok(false);
        }
        for subset in KSubsets::new(self.config.n(), k) {
            let a_s = self.a.select_rows(&subset);
            if rank(&a_s, 1e-9)? < self.dim() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;

    #[test]
    fn paper_instance_shape() {
        let p = RegressionProblem::paper_instance();
        assert_eq!(p.config().n(), 6);
        assert_eq!(p.config().f(), 1);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.costs().len(), 6);
    }

    #[test]
    fn paper_observations_decompose_as_ax_plus_noise() {
        let p = RegressionProblem::paper_instance();
        let reconstructed = &p
            .matrix()
            .matvec(&RegressionProblem::paper_ground_truth())
            .unwrap()
            + &RegressionProblem::paper_noise();
        assert!(reconstructed.approx_eq(p.observations(), 1e-12));
    }

    #[test]
    fn paper_honest_minimizer_matches_reported_value() {
        let p = RegressionProblem::paper_instance();
        // H = {2,…,6} in the paper's 1-based indexing = {1,…,5} here.
        let x_h = p.subset_minimizer(&[1, 2, 3, 4, 5]).unwrap();
        assert!(
            (x_h[0] - 1.0780).abs() < 5e-4,
            "x_H[0] = {} vs paper 1.0780",
            x_h[0]
        );
        assert!(
            (x_h[1] - 0.9825).abs() < 5e-4,
            "x_H[1] = {} vs paper 0.9825",
            x_h[1]
        );
    }

    #[test]
    fn paper_rank_condition_holds() {
        let p = RegressionProblem::paper_instance();
        assert!(p.all_redundancy_stacks_full_rank().unwrap());
    }

    #[test]
    fn agent_costs_match_subset_loss() {
        let p = RegressionProblem::paper_instance();
        let x = Vector::from(vec![0.5, -0.5]);
        let direct: f64 = (0..6).map(|i| p.agent_cost(i).value(&x)).sum();
        let via_subset = p.subset_loss(&[0, 1, 2, 3, 4, 5], &x);
        assert!((direct - via_subset).abs() < 1e-12);
    }

    #[test]
    fn subset_minimizer_zeroes_aggregate_gradient() {
        let p = RegressionProblem::paper_instance();
        let subset = vec![1, 2, 3, 4, 5];
        let x_s = p.subset_minimizer(&subset).unwrap();
        let mut grad = Vector::zeros(2);
        for &i in &subset {
            grad += &p.agent_cost(i).gradient(&x_s);
        }
        assert!(grad.norm() < 1e-9, "gradient at minimizer: {grad}");
    }

    #[test]
    fn minimizer_of_too_small_subset_fails() {
        let p = RegressionProblem::paper_instance();
        // One row cannot determine two parameters.
        assert!(p.subset_minimizer(&[0]).is_err());
    }

    #[test]
    fn construction_validates_shapes() {
        let config = SystemConfig::new(3, 1).unwrap();
        let a = Matrix::zeros(2, 2); // wrong: 2 rows for 3 agents
        assert!(RegressionProblem::new(config, a, Vector::zeros(3)).is_err());
    }

    #[test]
    fn random_instance_is_reproducible_and_full_rank() {
        let config = SystemConfig::new(8, 2).unwrap();
        let x_star = Vector::from(vec![1.0, -2.0, 0.5]);
        let p1 = RegressionProblem::random(config, 3, &x_star, 0.05, 99).unwrap();
        let p2 = RegressionProblem::random(config, 3, &x_star, 0.05, 99).unwrap();
        assert!(p1.matrix().approx_eq(p2.matrix(), 0.0));
        assert!(p1.observations().approx_eq(p2.observations(), 0.0));
        assert!(p1.all_redundancy_stacks_full_rank().unwrap());
    }

    #[test]
    fn noiseless_random_instance_recovers_ground_truth_from_every_quorum() {
        let config = SystemConfig::new(7, 2).unwrap();
        let x_star = Vector::from(vec![2.0, -1.0]);
        let p = RegressionProblem::random(config, 2, &x_star, 0.0, 7).unwrap();
        // Every (n−2f) = 3 subset recovers x* exactly: 2f-redundancy.
        for subset in KSubsets::new(7, 3) {
            let x_s = p.subset_minimizer(&subset).unwrap();
            assert!(x_s.approx_eq(&x_star, 1e-8), "subset {subset:?} gave {x_s}");
        }
    }

    #[test]
    fn fan_with_six_agents_matches_paper_geometry() {
        let config = SystemConfig::new(6, 1).unwrap();
        let fan = RegressionProblem::fan(config, 150.0, 0.0, 0).unwrap();
        let paper = RegressionProblem::paper_instance();
        // The paper's rows are the 150°-spread fan (up to rounding of the
        // published 0.8/0.5 entries to one decimal).
        for i in 0..6 {
            let fan_row = fan.matrix().row_vector(i);
            let paper_row = paper.matrix().row_vector(i);
            assert!(
                fan_row.approx_eq(&paper_row, 0.07),
                "row {i}: fan {fan_row} vs paper {paper_row}"
            );
        }
        // Noiseless fan recovers x* = (1, 1) from every quorum.
        for subset in KSubsets::new(6, 4) {
            let x = fan.subset_minimizer(&subset).unwrap();
            assert!(x.approx_eq(&RegressionProblem::paper_ground_truth(), 1e-9));
        }
    }

    #[test]
    fn fan_validates_inputs() {
        let config = SystemConfig::new(9, 1).unwrap();
        assert!(RegressionProblem::fan(config, 0.0, 0.0, 0).is_err());
        assert!(RegressionProblem::fan(config, 180.0, 0.0, 0).is_err());
        assert!(RegressionProblem::fan(config, 160.0, 0.01, 0).is_ok());
        let tight = SystemConfig::new(5, 2).unwrap(); // n − 2f = 1 < 2
        assert!(RegressionProblem::fan(tight, 150.0, 0.0, 0).is_err());
    }

    #[test]
    fn fan_stacks_are_full_rank() {
        let config = SystemConfig::new(9, 2).unwrap();
        let fan = RegressionProblem::fan(config, 160.0, 0.05, 3).unwrap();
        assert!(fan.all_redundancy_stacks_full_rank().unwrap());
    }

    #[test]
    fn random_generation_validates_inputs() {
        let config = SystemConfig::new(5, 2).unwrap();
        // n − 2f = 1 < d = 2: impossible to have full-rank stacks.
        assert!(
            RegressionProblem::random(config, 2, &Vector::from(vec![1.0, 1.0]), 0.0, 1).is_err()
        );
        // Mismatched x_star dimension.
        let config = SystemConfig::new(6, 1).unwrap();
        assert!(RegressionProblem::random(config, 2, &Vector::zeros(3), 0.0, 1).is_err());
    }
}
