//! Quadratic cost families.
//!
//! The paper's numerical experiments (Section 5 / Appendix J) use the scalar
//! regression cost `Q_i(x) = (B_i − A_i x)²` with a row vector `A_i` and a
//! scalar observation `B_i`. [`ScalarRegressionCost`] implements exactly
//! that; [`QuadraticCost`] is the general PSD quadratic
//! `½ xᵀP x + qᵀx + c` used by tests and extension experiments.

use crate::cost::CostFunction;
use crate::error::ProblemError;
use abft_linalg::{solve_spd, Matrix, Vector};

/// An agent's regression cost `Q_i(x) = (B_i − A_i x)²` (Appendix J).
///
/// The gradient is `∇Q_i(x) = 2 A_iᵀ (A_i x − B_i)`. Note the factor 2: the
/// paper's Section 5 reports the smoothness constant `µ = 2` for unit-norm
/// rows, consistent with this calculus convention (Appendix J's `µ = 1`
/// drops the factor — see `DESIGN.md` §5 and `EXPERIMENTS.md`).
///
/// # Example
///
/// ```
/// use abft_problems::{CostFunction, ScalarRegressionCost};
/// use abft_linalg::Vector;
///
/// let cost = ScalarRegressionCost::new(Vector::from(vec![1.0, 0.0]), 0.9108);
/// let x = Vector::from(vec![1.0, 1.0]);
/// // (0.9108 − 1.0)² = 0.00795664
/// assert!((cost.value(&x) - 0.00795664).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarRegressionCost {
    row: Vector,
    observation: f64,
}

impl ScalarRegressionCost {
    /// Creates the cost from the agent's data row `A_i` and observation `B_i`.
    pub fn new(row: Vector, observation: f64) -> Self {
        ScalarRegressionCost { row, observation }
    }

    /// The data row `A_i`.
    pub fn row(&self) -> &Vector {
        &self.row
    }

    /// The observation `B_i`.
    pub fn observation(&self) -> f64 {
        self.observation
    }

    /// The residual `B_i − A_i x`.
    pub fn residual(&self, x: &Vector) -> f64 {
        self.observation - self.row.dot(x)
    }

    /// Smoothness (gradient Lipschitz) constant of this single cost:
    /// `2‖A_i‖² = 2·λ_max(A_iᵀA_i)`.
    pub fn smoothness(&self) -> f64 {
        2.0 * self.row.norm_sq()
    }
}

impl CostFunction for ScalarRegressionCost {
    fn dim(&self) -> usize {
        self.row.dim()
    }

    fn value(&self, x: &Vector) -> f64 {
        let r = self.residual(x);
        r * r
    }

    fn gradient(&self, x: &Vector) -> Vector {
        // ∇(B − A·x)² = −2(B − A·x)·A = 2(A·x − B)·A.
        self.row.scale(-2.0 * self.residual(x))
    }

    fn gradient_into(&self, x: &Vector, out: &mut [f64]) {
        // Allocation-free twin of `gradient` — this is the gradient the
        // paper's regression experiments compute n times per DGD round.
        let factor = -2.0 * self.residual(x);
        for (slot, a) in out.iter_mut().zip(self.row.iter()) {
            *slot = a * factor;
        }
    }
}

/// A general convex quadratic `Q(x) = ½ xᵀP x + qᵀx + c` with symmetric
/// positive-semidefinite `P`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticCost {
    p: Matrix,
    q: Vector,
    c: f64,
}

impl QuadraticCost {
    /// Creates the quadratic from its coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Shape`] when `P` is not square of the same
    /// dimension as `q`, or not symmetric.
    pub fn new(p: Matrix, q: Vector, c: f64) -> Result<Self, ProblemError> {
        if !p.is_square() || p.rows() != q.dim() {
            return Err(ProblemError::Shape {
                expected: format!("square P matching q (dim {})", q.dim()),
                actual: format!("{}x{} P", p.rows(), p.cols()),
            });
        }
        if !p.is_symmetric(1e-9) {
            return Err(ProblemError::Shape {
                expected: "symmetric P".to_string(),
                actual: "asymmetric P".to_string(),
            });
        }
        Ok(QuadraticCost { p, q, c })
    }

    /// An isotropic quadratic `‖x − center‖²` (i.e. `P = 2I`).
    pub fn squared_distance(center: &Vector) -> Self {
        let d = center.dim();
        QuadraticCost {
            p: Matrix::identity(d).scale(2.0),
            q: center.scale(-2.0),
            c: center.norm_sq(),
        }
    }

    /// The Hessian `P`.
    pub fn hessian(&self) -> &Matrix {
        &self.p
    }

    /// The unique minimizer `−P⁻¹q`, when `P` is positive definite.
    ///
    /// # Errors
    ///
    /// Returns a [`ProblemError::Linalg`] when `P` is singular or indefinite.
    pub fn minimizer(&self) -> Result<Vector, ProblemError> {
        Ok(solve_spd(&self.p, &self.q.scale(-1.0))?)
    }
}

impl CostFunction for QuadraticCost {
    fn dim(&self) -> usize {
        self.q.dim()
    }

    // LINT-ALLOW(panic-reach): `matvec` only errs on a dimension mismatch,
    // which the constructor rules out.
    fn value(&self, x: &Vector) -> f64 {
        0.5 * x.dot(&self.p.matvec(x).expect("dimension checked at construction"))
            + self.q.dot(x)
            + self.c
    }

    // LINT-ALLOW(panic-reach): `matvec` only errs on a dimension mismatch,
    // which the constructor rules out.
    fn gradient(&self, x: &Vector) -> Vector {
        &self.p.matvec(x).expect("dimension checked at construction") + &self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::finite_difference_gradient;

    #[test]
    fn regression_cost_value_and_gradient() {
        let cost = ScalarRegressionCost::new(Vector::from(vec![0.8, 0.5]), 1.3349);
        let x = Vector::from(vec![1.0, 1.0]);
        // residual = 1.3349 − 1.3 = 0.0349
        assert!((cost.residual(&x) - 0.0349).abs() < 1e-12);
        assert!((cost.value(&x) - 0.0349f64.powi(2)).abs() < 1e-12);
        let fd = finite_difference_gradient(&cost, &x, 1e-6);
        assert!(fd.approx_eq(&cost.gradient(&x), 1e-6));
    }

    #[test]
    fn regression_gradient_vanishes_at_exact_fit() {
        let cost = ScalarRegressionCost::new(Vector::from(vec![2.0, -1.0]), 3.0);
        // A·x = 2·2 − 1·1 = 3 = B.
        let x = Vector::from(vec![2.0, 1.0]);
        assert_eq!(cost.value(&x), 0.0);
        assert!(cost.gradient(&x).norm() < 1e-12);
    }

    #[test]
    fn regression_smoothness_is_twice_row_norm_sq() {
        let cost = ScalarRegressionCost::new(Vector::from(vec![1.0, 0.0]), 0.0);
        assert_eq!(cost.smoothness(), 2.0);
        let cost = ScalarRegressionCost::new(Vector::from(vec![0.8, 0.5]), 0.0);
        assert!((cost.smoothness() - 2.0 * 0.89).abs() < 1e-12);
    }

    #[test]
    fn regression_gradient_is_lipschitz_with_smoothness() {
        let cost = ScalarRegressionCost::new(Vector::from(vec![0.5, 0.8]), 1.0);
        let x = Vector::from(vec![0.2, -0.4]);
        let y = Vector::from(vec![-1.0, 2.0]);
        let lhs = (&cost.gradient(&x) - &cost.gradient(&y)).norm();
        let rhs = cost.smoothness() * (&x - &y).norm();
        assert!(lhs <= rhs + 1e-12);
    }

    #[test]
    fn gradient_into_matches_gradient() {
        let cost = ScalarRegressionCost::new(Vector::from(vec![0.8, 0.5]), 1.3349);
        let x = Vector::from(vec![1.0, -0.3]);
        let mut out = [0.0; 2];
        cost.gradient_into(&x, &mut out);
        assert_eq!(out, cost.gradient(&x).as_slice());
        // The default (allocating) implementation agrees too.
        let q = QuadraticCost::squared_distance(&Vector::from(vec![1.0, 2.0]));
        let mut out = [0.0; 2];
        q.gradient_into(&x, &mut out);
        assert_eq!(out, q.gradient(&x).as_slice());
    }

    #[test]
    fn quadratic_construction_validates() {
        let p = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]).unwrap();
        assert!(QuadraticCost::new(p.clone(), Vector::zeros(2), 0.0).is_ok());
        assert!(QuadraticCost::new(p.clone(), Vector::zeros(3), 0.0).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(QuadraticCost::new(asym, Vector::zeros(2), 0.0).is_err());
    }

    #[test]
    fn quadratic_gradient_matches_finite_difference() {
        let p = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let cost = QuadraticCost::new(p, Vector::from(vec![-1.0, 0.5]), 2.0).unwrap();
        let x = Vector::from(vec![0.7, -0.3]);
        let fd = finite_difference_gradient(&cost, &x, 1e-6);
        assert!(fd.approx_eq(&cost.gradient(&x), 1e-5));
    }

    #[test]
    fn quadratic_minimizer_zeroes_gradient() {
        let p = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let cost = QuadraticCost::new(p, Vector::from(vec![1.0, -2.0]), 0.0).unwrap();
        let xmin = cost.minimizer().unwrap();
        assert!(cost.gradient(&xmin).norm() < 1e-10);
        // Any perturbation increases the value.
        let perturbed = &xmin + &Vector::from(vec![0.1, -0.1]);
        assert!(cost.value(&perturbed) > cost.value(&xmin));
    }

    #[test]
    fn squared_distance_minimizes_at_center() {
        let center = Vector::from(vec![1.5, -2.5]);
        let cost = QuadraticCost::squared_distance(&center);
        assert!(cost.minimizer().unwrap().approx_eq(&center, 1e-10));
        assert!((cost.value(&center)).abs() < 1e-12);
        let x = Vector::from(vec![2.5, -2.5]);
        assert!((cost.value(&x) - 1.0).abs() < 1e-12); // ‖x − c‖² = 1
    }
}
