//! Error type for problem construction and minimization.

use abft_core::CoreError;
use abft_linalg::LinalgError;
use std::fmt;

/// Errors produced while building or analyzing optimization problems.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// A linear-algebra operation failed (singular stack, shape mismatch, …).
    Linalg(LinalgError),
    /// The system configuration was invalid.
    Core(CoreError),
    /// Structurally inconsistent problem data.
    Shape {
        /// What was expected.
        expected: String,
        /// What was supplied.
        actual: String,
    },
    /// A generated instance failed a validity check (e.g. a rank-deficient
    /// subset stack) more times than the retry budget allows.
    GenerationFailed {
        /// What kept failing.
        reason: String,
        /// How many attempts were made.
        attempts: usize,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ProblemError::Core(e) => write!(f, "configuration failure: {e}"),
            ProblemError::Shape { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            ProblemError::GenerationFailed { reason, attempts } => {
                write!(
                    f,
                    "instance generation failed after {attempts} attempts: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for ProblemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProblemError::Linalg(e) => Some(e),
            ProblemError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ProblemError {
    fn from(e: LinalgError) -> Self {
        ProblemError::Linalg(e)
    }
}

impl From<CoreError> for ProblemError {
    fn from(e: CoreError) -> Self {
        ProblemError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let err = ProblemError::from(LinalgError::Singular);
        assert!(matches!(err, ProblemError::Linalg(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn generation_failure_message() {
        let err = ProblemError::GenerationFailed {
            reason: "rank-deficient subset".into(),
            attempts: 10,
        };
        assert!(err.to_string().contains("10 attempts"));
    }
}
