//! The cost-function abstraction and aggregate helpers.

use abft_linalg::Vector;
use std::sync::Arc;

/// A local cost function `Q_i : ℝᵈ → ℝ` held by one agent.
///
/// For non-differentiable costs (e.g. [`crate::absval::AbsoluteCost`]),
/// [`CostFunction::gradient`] returns a subgradient; the DGD machinery of
/// Section 4 is only applied to differentiable families, matching the paper.
///
/// Implementors must be `Send + Sync` so the threaded runtime can share costs
/// across agent threads.
pub trait CostFunction: Send + Sync {
    /// Dimension `d` of the decision variable.
    fn dim(&self) -> usize;

    /// Cost value `Q_i(x)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x.dim() != self.dim()`.
    fn value(&self, x: &Vector) -> f64;

    /// Gradient `∇Q_i(x)` (a subgradient for non-smooth costs).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x.dim() != self.dim()`.
    fn gradient(&self, x: &Vector) -> Vector;

    /// Writes `∇Q_i(x)` into `out` — the zero-copy producer entry point
    /// used by the batch-reusing DGD drivers to fill `GradientBatch` rows
    /// in place. The default delegates to [`CostFunction::gradient`];
    /// hot-path cost families override it to skip the allocation.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `out.len() != self.dim()`.
    fn gradient_into(&self, x: &Vector, out: &mut [f64]) {
        out.copy_from_slice(self.gradient(x).as_slice());
    }
}

/// A shareable, thread-safe cost function handle.
pub type SharedCost = Arc<dyn CostFunction>;

/// Sum of `Σ_{i∈subset} Q_i(x)` over the given agent indices.
///
/// # Panics
///
/// Panics when an index is out of range.
// LINT-ALLOW(panic-reach): documented panic contract — subsets come from
// scenario builders that validate agent ids against `n`.
pub fn total_value(costs: &[SharedCost], subset: &[usize], x: &Vector) -> f64 {
    subset.iter().map(|&i| costs[i].value(x)).sum()
}

/// Gradient of the subset aggregate `Σ_{i∈subset} ∇Q_i(x)`.
///
/// # Panics
///
/// Panics when `subset` is empty or an index is out of range.
// LINT-ALLOW(panic-reach): documented panic contract — subsets come from
// scenario builders that validate agent ids against `n`.
pub fn total_gradient(costs: &[SharedCost], subset: &[usize], x: &Vector) -> Vector {
    assert!(!subset.is_empty(), "total_gradient over empty subset");
    let mut acc = Vector::zeros(x.dim());
    for &i in subset {
        acc += &costs[i].gradient(x);
    }
    acc
}

/// The aggregate cost `Σ_{i∈indices} Q_i(x)` packaged as a [`CostFunction`].
///
/// This is the object the paper's definitions quantify over: resilience is
/// about the minimizers of `Σ_{i∈S} Q_i` for honest subsets `S`.
pub struct AggregateCost {
    costs: Vec<SharedCost>,
    indices: Vec<usize>,
    dim: usize,
}

impl AggregateCost {
    /// Builds the aggregate of `costs[i]` for `i ∈ indices`.
    ///
    /// # Panics
    ///
    /// Panics when `indices` is empty, out of range, or the member costs
    /// disagree on dimension.
    pub fn new(costs: Vec<SharedCost>, indices: Vec<usize>) -> Self {
        assert!(!indices.is_empty(), "aggregate of zero costs");
        let dim = costs[indices[0]].dim();
        for &i in &indices {
            assert_eq!(costs[i].dim(), dim, "cost dimensions disagree");
        }
        AggregateCost {
            costs,
            indices,
            dim,
        }
    }

    /// The member indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

impl CostFunction for AggregateCost {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &Vector) -> f64 {
        total_value(&self.costs, &self.indices, x)
    }

    fn gradient(&self, x: &Vector) -> Vector {
        total_gradient(&self.costs, &self.indices, x)
    }
}

/// Central finite-difference approximation of `∇Q(x)` — used in tests to
/// validate analytic gradients.
pub fn finite_difference_gradient(cost: &dyn CostFunction, x: &Vector, h: f64) -> Vector {
    Vector::from_fn(x.dim(), |i| {
        let mut plus = x.clone();
        let mut minus = x.clone();
        plus[i] += h;
        minus[i] -= h;
        (cost.value(&plus) - cost.value(&minus)) / (2.0 * h)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Q(x) = ‖x − c‖² — minimal hand-rolled cost for testing the helpers.
    struct SquaredDistance {
        center: Vector,
    }

    impl CostFunction for SquaredDistance {
        fn dim(&self) -> usize {
            self.center.dim()
        }
        fn value(&self, x: &Vector) -> f64 {
            (x - &self.center).norm_sq()
        }
        fn gradient(&self, x: &Vector) -> Vector {
            (x - &self.center).scale(2.0)
        }
    }

    fn make_costs(centers: &[&[f64]]) -> Vec<SharedCost> {
        centers
            .iter()
            .map(|c| {
                Arc::new(SquaredDistance {
                    center: Vector::from(*c),
                }) as SharedCost
            })
            .collect()
    }

    #[test]
    fn total_value_sums_members() {
        let costs = make_costs(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 2.0]]);
        let x = Vector::zeros(2);
        assert_eq!(total_value(&costs, &[0, 1, 2], &x), 0.0 + 4.0 + 4.0);
        assert_eq!(total_value(&costs, &[1], &x), 4.0);
    }

    #[test]
    fn total_gradient_sums_members() {
        let costs = make_costs(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = Vector::zeros(2);
        let g = total_gradient(&costs, &[0, 1], &x);
        assert!(g.approx_eq(&Vector::from(vec![-2.0, -2.0]), 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty subset")]
    fn total_gradient_rejects_empty() {
        let costs = make_costs(&[&[0.0]]);
        let _ = total_gradient(&costs, &[], &Vector::zeros(1));
    }

    #[test]
    fn aggregate_cost_behaves_like_sum() {
        let costs = make_costs(&[&[1.0], &[3.0], &[5.0]]);
        let agg = AggregateCost::new(costs.clone(), vec![0, 2]);
        let x = Vector::from(vec![2.0]);
        assert_eq!(agg.value(&x), 1.0 + 9.0);
        assert_eq!(agg.dim(), 1);
        assert_eq!(agg.indices(), &[0, 2]);
        // Gradient: 2(2−1) + 2(2−5) = 2 − 6 = −4.
        assert!(agg.gradient(&x).approx_eq(&Vector::from(vec![-4.0]), 1e-12));
    }

    #[test]
    fn finite_difference_matches_analytic() {
        let cost = SquaredDistance {
            center: Vector::from(vec![1.0, -2.0]),
        };
        let x = Vector::from(vec![0.3, 0.7]);
        let fd = finite_difference_gradient(&cost, &x, 1e-6);
        assert!(fd.approx_eq(&cost.gradient(&x), 1e-6));
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn aggregate_rejects_mixed_dimensions() {
        let costs: Vec<SharedCost> = vec![
            Arc::new(SquaredDistance {
                center: Vector::zeros(1),
            }),
            Arc::new(SquaredDistance {
                center: Vector::zeros(2),
            }),
        ];
        let _ = AggregateCost::new(costs, vec![0, 1]);
    }
}
