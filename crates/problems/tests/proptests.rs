//! Property-based tests for cost functions and instance generators.

use abft_core::subsets::KSubsets;
use abft_core::SystemConfig;
use abft_linalg::Vector;
use abft_problems::analysis::convexity_constants;
use abft_problems::{
    finite_difference_gradient, total_gradient, total_value, CostFunction, RegressionProblem,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The subset minimizer is optimal: no probe point achieves a smaller
    /// subset loss.
    #[test]
    fn subset_minimizer_is_optimal(
        seed in 0u64..300,
        noise in 0.0..0.3f64,
        dx in -1.0..1.0f64,
        dy in -1.0..1.0f64,
    ) {
        let config = SystemConfig::new(6, 1).expect("valid");
        let problem = RegressionProblem::fan(config, 150.0, noise, seed).expect("generable");
        for subset in KSubsets::new(6, 5) {
            let x_s = problem.subset_minimizer(&subset).expect("full rank");
            let at_min = problem.subset_loss(&subset, &x_s);
            let probe = &x_s + &Vector::from(vec![dx, dy]);
            prop_assert!(problem.subset_loss(&subset, &probe) >= at_min - 1e-9);
        }
    }

    /// Analytic gradients of every agent cost match finite differences at
    /// random probe points.
    #[test]
    fn agent_gradients_match_finite_differences(
        seed in 0u64..300,
        px in -3.0..3.0f64,
        py in -3.0..3.0f64,
    ) {
        let config = SystemConfig::new(6, 1).expect("valid");
        let problem = RegressionProblem::fan(config, 150.0, 0.1, seed).expect("generable");
        let probe = Vector::from(vec![px, py]);
        for i in 0..6 {
            let cost = problem.agent_cost(i);
            let fd = finite_difference_gradient(&cost, &probe, 1e-6);
            prop_assert!(fd.approx_eq(&cost.gradient(&probe), 1e-5));
        }
    }

    /// Aggregate helpers are linear: value/gradient over a subset equal the
    /// sums of the members'.
    #[test]
    fn aggregation_is_linear(seed in 0u64..300, px in -2.0..2.0f64, py in -2.0..2.0f64) {
        let config = SystemConfig::new(6, 1).expect("valid");
        let problem = RegressionProblem::fan(config, 150.0, 0.05, seed).expect("generable");
        let costs = problem.costs();
        let probe = Vector::from(vec![px, py]);
        let subset = [0usize, 2, 4];
        let direct_v: f64 = subset.iter().map(|&i| costs[i].value(&probe)).sum();
        prop_assert!((total_value(&costs, &subset, &probe) - direct_v).abs() < 1e-12);
        let mut direct_g = Vector::zeros(2);
        for &i in &subset {
            direct_g += &costs[i].gradient(&probe);
        }
        prop_assert!(total_gradient(&costs, &subset, &probe).approx_eq(&direct_g, 1e-12));
    }

    /// Appendix C, executable: γ ≤ µ on every generated instance.
    #[test]
    fn gamma_never_exceeds_mu(seed in 0u64..300, noise in 0.0..0.5f64) {
        let config = SystemConfig::new(7, 2).expect("valid");
        let problem = RegressionProblem::fan(config, 160.0, noise, seed).expect("generable");
        let c = convexity_constants(&problem).expect("computable");
        prop_assert!(c.gamma <= c.mu + 1e-12, "gamma {} > mu {}", c.gamma, c.mu);
        prop_assert!(c.gamma > 0.0);
    }

    /// Random redundant instances keep every (n−2f)-stack full rank, so all
    /// subset minimizers exist.
    #[test]
    fn random_instances_have_unique_subset_minimizers(seed in 0u64..100) {
        let config = SystemConfig::new(8, 2).expect("valid");
        let x_star = Vector::from(vec![1.0, -1.0]);
        let problem =
            RegressionProblem::random(config, 2, &x_star, 0.1, seed).expect("generable");
        prop_assert!(problem.all_redundancy_stacks_full_rank().expect("computable"));
        for subset in KSubsets::new(8, 4) {
            prop_assert!(problem.subset_minimizer(&subset).is_ok());
        }
    }
}
