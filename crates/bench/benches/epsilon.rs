//! Redundancy-measurement bench: the Appendix-J ε procedure, whose cost is
//! `C(n, f)·C(n−f, f)` least-squares solves.

use abft_bench::{fan_fixture, paper_fixture};
use abft_redundancy::{measure_redundancy, RegressionOracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure_redundancy");
    group.bench_function("paper_n6_f1", |b| {
        let (problem, _) = paper_fixture();
        let oracle = RegressionOracle::new(&problem);
        b.iter(|| {
            black_box(
                measure_redundancy(black_box(&oracle), *problem.config())
                    .expect("measurable")
                    .epsilon,
            )
        });
    });
    for (n, f) in [(10usize, 2usize), (12, 3)] {
        let (problem, _) = fan_fixture(n, f);
        group.bench_with_input(
            BenchmarkId::new("fan", format!("n{n}_f{f}")),
            &problem,
            |b, problem| {
                let oracle = RegressionOracle::new(problem);
                b.iter(|| {
                    black_box(
                        measure_redundancy(black_box(&oracle), *problem.config())
                            .expect("measurable")
                            .epsilon,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epsilon);
criterion_main!(benches);
