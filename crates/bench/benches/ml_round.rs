//! Figure 4/5 driver bench: one D-SGD round (10 agents × batch 128 MLP
//! gradients + robust aggregation) on the synthetic-MNIST substitute.

use abft_filters::{Cge, Cwtm, GradientFilter, Mean};
use abft_linalg::rng::seeded_rng;
use abft_linalg::Vector;
use abft_ml::{DatasetSpec, Mlp, Model};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ml_round(c: &mut Criterion) {
    let spec = DatasetSpec {
        train: 2000,
        test: 200,
        ..DatasetSpec::synthetic_mnist()
    };
    let (train, _) = spec.generate(2024);
    let shards = train.shard(10, 7).expect("2000 samples into 10 shards");
    let model = Mlp::new(&[spec.dim, 32, spec.classes], 3).expect("valid sizes");

    // Pre-sample the batches so the bench isolates gradient + aggregation.
    let mut rng = seeded_rng(1);
    let batches: Vec<Vec<usize>> = shards
        .iter()
        .map(|s| s.sample_batch(&mut rng, 128))
        .collect();

    let mut group = c.benchmark_group("dsgd_round");
    group.sample_size(20);

    group.bench_function("gradients_only", |b| {
        b.iter(|| {
            let gs: Vec<Vector> = shards
                .iter()
                .zip(&batches)
                .map(|(shard, batch)| model.loss_and_gradient(shard, batch).1)
                .collect();
            black_box(gs.len())
        });
    });

    let gradients: Vec<Vector> = shards
        .iter()
        .zip(&batches)
        .map(|(shard, batch)| model.loss_and_gradient(shard, batch).1)
        .collect();
    let filters: [(&str, Box<dyn GradientFilter>); 3] = [
        ("mean", Box::new(Mean::new())),
        ("cge", Box::new(Cge::averaged())),
        ("cwtm", Box::new(Cwtm::new())),
    ];
    for (name, filter) in &filters {
        group.bench_with_input(
            BenchmarkId::new("aggregate_2410d", name),
            &gradients,
            |b, gs| {
                b.iter(|| black_box(filter.aggregate(black_box(gs), 3).expect("valid inputs")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ml_round);
criterion_main!(benches);
