//! Headline bench of the zero-copy aggregation refactor at a
//! production-ish shape (`n = 100` gradients of dimension `d = 10 000`).
//!
//! Three variants per filter:
//!
//! * `legacy` — the pre-refactor per-`Vector` algorithm (scattered heap
//!   vectors, per-coordinate `to_vec` + sort for the coordinate-wise
//!   filters), reproduced here verbatim as the baseline;
//! * `slice` — the new `&[Vector]` adapter (copies into a temporary
//!   `GradientBatch`, then runs the zero-copy kernel);
//! * `batch` — the zero-copy path over a reused `GradientBatch`, as the
//!   DGD drivers run it every iteration.
//!
//! The acceptance target for this suite is ≥ 1.5× legacy→batch on CGE and
//! CWTM; a speedup summary is printed after the measurements.

use abft_bench::gradient_bundle;
use abft_filters::{batch_of, by_name};
use abft_linalg::stats::{median, trimmed_mean};
use abft_linalg::Vector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 100;
const F: usize = 10;
const DIM: usize = 10_000;

/// Filters with (near-)linear per-call cost at the big shape. The
/// quadratic-cost selection filters (krum, multi-krum, bulyan) and the
/// iterative geometric medians are benched in `filters.rs` at smaller
/// shapes — at n = 100, d = 10 000 their pairwise-distance stage dwarfs
/// the storage-layout effect this bench isolates.
const FILTERS: [&str; 7] = [
    "cge",
    "cge-avg",
    "cwtm",
    "cwmed",
    "mean",
    "norm-clipping",
    "sign-majority",
];

/// The pre-refactor implementations, verbatim from the seed tree: every
/// algorithmic choice (full index sort for CGE, allocating sorted
/// `trimmed_mean`/`median` per coordinate for CWTM/CWMed, `Vector`
/// temporaries for clipping) is what shipped before the `GradientBatch`
/// refactor.
mod legacy {
    use super::*;

    /// The seed's `validate_inputs`: every aggregate call scanned all
    /// gradients for dimensional consistency and non-finite entries.
    pub fn validate(gradients: &[Vector]) {
        let dim = gradients[0].dim();
        for g in gradients {
            assert_eq!(g.dim(), dim);
            assert!(!g.has_non_finite());
        }
    }

    pub fn cge(gradients: &[Vector], f: usize, averaged: bool) -> Vector {
        let mut order: Vec<usize> = (0..gradients.len()).collect();
        order.sort_by(|&i, &j| {
            gradients[i]
                .norm()
                .total_cmp(&gradients[j].norm())
                .then(i.cmp(&j))
        });
        order.truncate(gradients.len() - f);
        let mut acc = Vector::zeros(gradients[0].dim());
        for &i in &order {
            acc += &gradients[i];
        }
        if averaged {
            acc.scale_mut(1.0 / order.len() as f64);
        }
        acc
    }

    pub fn cwtm(gradients: &[Vector], f: usize) -> Vector {
        let dim = gradients[0].dim();
        let mut out = Vector::zeros(dim);
        let mut column = vec![0.0; gradients.len()];
        for k in 0..dim {
            for (i, g) in gradients.iter().enumerate() {
                column[i] = g[k];
            }
            out[k] = trimmed_mean(&column, f).expect("n > 2f");
        }
        out
    }

    pub fn cwmed(gradients: &[Vector]) -> Vector {
        let dim = gradients[0].dim();
        let mut out = Vector::zeros(dim);
        let mut column = vec![0.0; gradients.len()];
        for k in 0..dim {
            for (i, g) in gradients.iter().enumerate() {
                column[i] = g[k];
            }
            out[k] = median(&column).expect("non-empty");
        }
        out
    }

    pub fn mean(gradients: &[Vector]) -> Vector {
        let mut acc = Vector::zeros(gradients[0].dim());
        for g in gradients {
            acc += g;
        }
        acc.scale_mut(1.0 / gradients.len() as f64);
        acc
    }

    fn clip(u: &Vector, radius: f64) -> Vector {
        let n = u.norm();
        if n <= radius || n == 0.0 {
            u.clone()
        } else {
            u.scale(radius / n)
        }
    }

    pub fn norm_clipping(gradients: &[Vector], radius: f64) -> Vector {
        let mut acc = Vector::zeros(gradients[0].dim());
        for g in gradients {
            acc += &clip(g, radius);
        }
        acc.scale_mut(1.0 / gradients.len() as f64);
        acc
    }

    pub fn sign_majority(gradients: &[Vector], scale: f64) -> Vector {
        fn sign(x: f64) -> f64 {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
        let dim = gradients[0].dim();
        let mut out = Vector::zeros(dim);
        for k in 0..dim {
            let vote: f64 = gradients.iter().map(|g| sign(g[k])).sum();
            out[k] = scale * sign(vote);
        }
        out
    }
}

fn legacy_dispatch(name: &str, gradients: &[Vector], f: usize) -> Vector {
    legacy::validate(gradients);
    match name {
        "cge" => legacy::cge(gradients, f, false),
        "cge-avg" => legacy::cge(gradients, f, true),
        "cwtm" => legacy::cwtm(gradients, f),
        "cwmed" => legacy::cwmed(gradients),
        "mean" => legacy::mean(gradients),
        // Registry default radius/scale, matching `by_name`.
        "norm-clipping" => legacy::norm_clipping(gradients, 10.0),
        "sign-majority" => legacy::sign_majority(gradients, 1.0),
        other => panic!("no legacy baseline for {other}"),
    }
}

fn bench_slice_vs_batch(c: &mut Criterion) {
    let bundle = gradient_bundle(N, F, DIM, 42);
    let batch = batch_of(&bundle).expect("well-formed bundle");

    let mut group = c.benchmark_group("filters_batch");
    group.sample_size(10);
    for name in FILTERS {
        let filter = by_name(name).expect("registered");
        group.bench_with_input(BenchmarkId::new(name, "legacy"), &bundle, |b, bundle| {
            b.iter(|| black_box(legacy_dispatch(name, black_box(bundle), F)));
        });
        group.bench_with_input(BenchmarkId::new(name, "slice"), &bundle, |b, bundle| {
            b.iter(|| black_box(filter.aggregate(black_box(bundle), F)).unwrap());
        });
        let mut out = Vector::zeros(DIM);
        group.bench_with_input(BenchmarkId::new(name, "batch"), &batch, |b, batch| {
            b.iter(|| {
                filter
                    .aggregate_into(black_box(batch), F, &mut out)
                    .unwrap();
                black_box(&out);
            });
        });
    }
    group.finish();

    // Speedup summary from the recorded medians.
    println!("\n== filters_batch speedups at n={N}, d={DIM} (median) ==");
    println!(
        "{:<16} {:>14} {:>14}",
        "filter", "legacy/batch", "slice/batch"
    );
    for name in FILTERS {
        let median_of = |suffix: &str| {
            c.results
                .iter()
                .find(|(id, _)| id == &format!("filters_batch/{name}/{suffix}"))
                .map(|(_, ns)| *ns)
        };
        if let (Some(legacy), Some(slice), Some(batch)) =
            (median_of("legacy"), median_of("slice"), median_of("batch"))
        {
            println!(
                "{name:<16} {:>13.2}x {:>13.2}x",
                legacy / batch,
                slice / batch
            );
        }
    }
}

criterion_group!(benches, bench_slice_vs_batch);
criterion_main!(benches);
