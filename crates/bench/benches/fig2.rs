//! Figure 2/3 driver bench: the 1500-iteration trace generation for the
//! plotted algorithms under the gradient-reverse fault.

use abft_attacks::GradientReverse;
use abft_bench::paper_fixture;
use abft_dgd::{DgdSimulation, RunOptions};
use abft_filters::{by_name, GradientFilter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn run_curve(filter: &dyn GradientFilter, iterations: usize) -> usize {
    let (problem, x_h) = paper_fixture();
    let mut sim = DgdSimulation::new(*problem.config(), problem.costs())
        .expect("costs match config")
        .with_byzantine(0, Box::new(GradientReverse::new()))
        .expect("agent 0, f = 1");
    let options = RunOptions::paper_defaults_with_iterations(x_h, iterations);
    sim.run(filter, &options).expect("curve runs").trace.len()
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_curve");
    group.sample_size(10);
    for name in ["cge", "cwtm", "mean"] {
        let filter = by_name(name).expect("registered");
        group.bench_with_input(
            BenchmarkId::new(name, 1500usize),
            &1500usize,
            |b, &iters| {
                b.iter(|| black_box(run_curve(filter.as_ref(), iters)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
