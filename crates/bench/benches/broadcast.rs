//! EIG Byzantine-broadcast cost: message count grows with the `f + 1` round
//! tree, the price of the peer-to-peer architecture (Figure 1, right).

use abft_core::SystemConfig;
use abft_runtime::eig::EquivocationPlan;
use abft_runtime::eig_broadcast;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_broadcast");
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
        let config = SystemConfig::new_peer_to_peer(n, f).expect("3f < n");
        // Worst-ish case: an equivocating sender.
        let mut faulty = BTreeMap::new();
        faulty.insert(
            0usize,
            EquivocationPlan::Split {
                low: 7u64,
                high: 9u64,
                boundary: n / 2,
            },
        );
        group.bench_with_input(
            BenchmarkId::new("equivocating_sender", format!("n{n}_f{f}")),
            &faulty,
            |b, faulty| {
                b.iter(|| {
                    black_box(
                        eig_broadcast(config, 0, 42u64, 0u64, black_box(faulty))
                            .expect("valid broadcast")
                            .messages,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
