//! The exact algorithm's combinatorial blow-up — quantifying the paper's
//! remark that Theorem 2's construction "is not a very practical algorithm".
//!
//! The enumeration touches `C(n, f)` candidate sets × `C(n−f, f)` inner
//! subsets, each requiring a least-squares solve; growing `(n, f)` at fixed
//! ratio multiplies the work combinatorially.

use abft_bench::fan_fixture;
use abft_redundancy::{exact_resilient_output, RegressionOracle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_algorithm");
    // The (15, 4) case runs ~450k least-squares solves per call; cap the
    // sample count so the blow-up is measured without dominating the suite.
    group.sample_size(10);
    for (n, f) in [(6usize, 1usize), (9, 2), (12, 3), (15, 4)] {
        let (problem, _) = fan_fixture(n, f);
        group.bench_with_input(
            BenchmarkId::new("fan", format!("n{n}_f{f}")),
            &problem,
            |b, problem| {
                let oracle = RegressionOracle::new(problem);
                b.iter(|| {
                    black_box(
                        exact_resilient_output(black_box(&oracle), *problem.config())
                            .expect("computable")
                            .score,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
