//! Table 1 driver bench: one full 500-iteration DGD execution per paper
//! cell (filter × fault) on the Appendix-J instance.

use abft_attacks::{ByzantineStrategy, GradientReverse, RandomGaussian};
use abft_bench::paper_fixture;
use abft_dgd::{DgdSimulation, RunOptions};
use abft_filters::{Cge, Cwtm, GradientFilter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

type AttackFactory = fn() -> Box<dyn ByzantineStrategy>;

fn run_cell(filter: &dyn GradientFilter, attack: AttackFactory) -> f64 {
    let (problem, x_h) = paper_fixture();
    let mut sim = DgdSimulation::new(*problem.config(), problem.costs())
        .expect("costs match config")
        .with_byzantine(0, attack())
        .expect("agent 0, f = 1");
    let options = RunOptions::paper_defaults(x_h);
    sim.run(filter, &options)
        .expect("paper cell runs")
        .final_distance()
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cell");
    group.sample_size(20);
    let cells: [(&str, AttackFactory); 2] = [
        ("gradient-reverse", || Box::new(GradientReverse::new())),
        ("random", || Box::new(RandomGaussian::paper(2021))),
    ];
    for (attack_name, attack) in cells {
        group.bench_with_input(
            BenchmarkId::new("cge", attack_name),
            &attack,
            |b, attack| b.iter(|| black_box(run_cell(&Cge::new(), *attack))),
        );
        group.bench_with_input(
            BenchmarkId::new("cwtm", attack_name),
            &attack,
            |b, attack| b.iter(|| black_box(run_cell(&Cwtm::new(), *attack))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
