//! Scenario-suite throughput: the full registered filters × attacks grid
//! as one parallel `ScenarioSuite` per backend, timed end to end.
//!
//! Unlike the criterion benches this is a *workload* bench: it measures
//! scenarios/second for the whole grid — the number that governs how fast
//! sweep experiments and CI-scale regression grids run — and emits the
//! results machine-readably to `BENCH_suite.json` (for trend tracking) in
//! addition to the human-readable table.
//!
//! Two axes:
//!
//! * **Backend.** The in-process backend runs the full grid (it is the
//!   only backend allowing omniscient attacks); the threaded and
//!   simulated-server backends run the grid minus the omniscient columns.
//!   Each JSON row records its **own** `grid` — the per-backend filter ×
//!   attack counts actually executed — so the file cannot claim 84 cells
//!   for a 56-cell run.
//! * **Aggregation threads.** Every grid runs at `aggregation_threads ∈
//!   {1, 4}`; suite workers share one pool per run. Parallel aggregation
//!   is bit-identical to serial, so this axis is pure throughput.
//! * **Recording.** Every grid runs with `Recording::Full` (the historical
//!   dense trace, one honest-cost pass per round) and
//!   `Recording::SummaryOnly` (lazy instrumentation off: no per-round
//!   loss/φ evaluation, no trace memory) — the JSON rows put the
//!   instrumentation cost next to the threads axis. Recording is pure
//!   observation, so the trajectories are identical on both rows.
//!
//! Run with: `cargo bench -p abft-bench --bench suite_throughput`

use abft_bench::fan_fixture;
use abft_dgd::RunOptions;
use abft_linalg::Vector;
use abft_scenario::{
    Backend, InProcess, NetworkModel, Recording, Scenario, ScenarioBuilder, ScenarioSuite,
    Simulated, Threaded,
};
use std::fmt::Write as _;
use std::time::Instant;

/// DGD iterations per cell — enough to exercise the hot loop, small enough
/// that the whole grid stays a seconds-scale bench.
const ITERATIONS: usize = 200;

/// The aggregation-thread axis every backend grid runs at.
const THREADS_AXIS: [usize; 2] = [1, 4];

/// The recording axis: dense instrumentation vs. instrumentation off.
const RECORDING_AXIS: [(&str, Recording); 2] = [
    ("full", Recording::Full),
    ("summary-only", Recording::SummaryOnly),
];

struct Row {
    backend: &'static str,
    threads: usize,
    recording: &'static str,
    filters: usize,
    attacks: usize,
    scenarios: usize,
    completed: usize,
    failed: usize,
    elapsed_s: f64,
    scenarios_per_sec: f64,
}

fn template(threads: usize, recording: Recording) -> ScenarioBuilder {
    // n = 9, f = 1 admits every registered filter (Bulyan needs 4f + 3).
    let (problem, x_h) = fan_fixture(9, 1);
    let mut options = RunOptions::paper_defaults(x_h);
    options.x0 = Vector::zeros(2);
    options.iterations = ITERATIONS;
    options.aggregation_threads = threads;
    Scenario::builder()
        .problem(&problem)
        .faults(1)
        .options(options)
        .record(recording)
}

fn main() {
    // The message-passing backends get the grid minus the omniscient
    // columns, so every timed cell is real work.
    let observable: Vec<&str> = abft_attacks::attack_names()
        .iter()
        .copied()
        .filter(|name| {
            abft_attacks::attack_by_name(name, 0)
                .map(|attack| !attack.is_omniscient())
                .unwrap_or(false)
        })
        .collect();
    let all_filters = abft_filters::filter_names();
    let all_attacks = abft_attacks::attack_names();
    let workers = ScenarioSuite::auto_workers();

    println!(
        "suite_throughput: {} filters x {} attacks (omniscient columns in-process only), \
         {ITERATIONS} iterations, {workers} workers, aggregation threads in {THREADS_AXIS:?}, \
         recording in [full, summary-only]\n",
        all_filters.len(),
        all_attacks.len(),
    );
    println!(
        "{:<18} {:>7} {:>13} {:>5} {:>9} {:>7} {:>10} {:>15}",
        "backend",
        "aggthr",
        "recording",
        "cells",
        "completed",
        "failed",
        "elapsed",
        "scenarios/sec"
    );

    let mut rows = Vec::new();
    for threads in THREADS_AXIS {
        for (recording_name, recording) in RECORDING_AXIS {
            let full_grid = ScenarioSuite::grid_seeded(
                &template(threads, recording),
                0,
                all_filters,
                all_attacks,
                42,
            )
            .expect("registry grid builds");
            let wire_grid = ScenarioSuite::grid_seeded(
                &template(threads, recording),
                0,
                all_filters,
                &observable,
                42,
            )
            .expect("registry grid builds");

            let backends: Vec<(&'static str, &ScenarioSuite, usize, Box<dyn Backend>)> = vec![
                (
                    "in-process",
                    &full_grid,
                    all_attacks.len(),
                    Box::new(InProcess),
                ),
                ("threaded", &wire_grid, observable.len(), Box::new(Threaded)),
                (
                    "simulated-server",
                    &wire_grid,
                    observable.len(),
                    Box::new(Simulated::server(NetworkModel::ideal())),
                ),
            ];

            for (name, suite, attacks, backend) in &backends {
                let started = Instant::now();
                let outcome = suite.run_parallel_collect(backend.as_ref(), workers);
                let elapsed_s = started.elapsed().as_secs_f64();
                let completed = outcome.outcomes.iter().filter(|o| o.is_ok()).count();
                let failed = outcome.outcomes.len() - completed;
                let scenarios_per_sec = outcome.outcomes.len() as f64 / elapsed_s;
                println!(
                    "{name:<18} {threads:>7} {recording_name:>13} {:>5} {completed:>9} \
                 {failed:>7} {:>9.2}s {scenarios_per_sec:>15.1}",
                    suite.len(),
                    elapsed_s
                );
                rows.push(Row {
                    backend: name,
                    threads,
                    recording: recording_name,
                    filters: all_filters.len(),
                    attacks: *attacks,
                    scenarios: suite.len(),
                    completed,
                    failed,
                    elapsed_s,
                    scenarios_per_sec,
                });
            }
        }
    }

    // Workspace root, so CI and trend tooling find one canonical path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    std::fs::write(path, to_json(ITERATIONS, workers, &rows))
        .expect("BENCH_suite.json is writable");
    println!("\nwrote {path}");
}

/// Hand-rolled JSON (the workspace has no serde): stable field order, one
/// object per (backend, threads) cell, each carrying the grid it actually
/// ran.
fn to_json(iterations: usize, workers: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"suite_throughput\",");
    let _ = writeln!(out, "  \"iterations\": {iterations},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(
        out,
        "  \"threads_axis\": [{}],",
        THREADS_AXIS.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(
        out,
        "  \"recording_axis\": [{}],",
        RECORDING_AXIS
            .map(|(name, _)| format!("\"{name}\""))
            .join(", ")
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"threads\": {}, \"recording\": \"{}\", \
             \"grid\": {{\"filters\": {}, \"attacks\": {}}}, \"scenarios\": {}, \
             \"completed\": {}, \"failed\": {}, \"elapsed_s\": {:.4}, \
             \"scenarios_per_sec\": {:.2}}}{comma}",
            row.backend,
            row.threads,
            row.recording,
            row.filters,
            row.attacks,
            row.scenarios,
            row.completed,
            row.failed,
            row.elapsed_s,
            row.scenarios_per_sec
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
