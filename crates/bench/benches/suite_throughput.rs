//! Scenario-suite throughput: the full registered filters × attacks grid
//! as one parallel `ScenarioSuite` per backend, timed end to end.
//!
//! Unlike the criterion benches this is a *workload* bench: it measures
//! scenarios/second for the whole grid — the number that governs how fast
//! sweep experiments and CI-scale regression grids run — and emits the
//! results machine-readably to `BENCH_suite.json` (for trend tracking) in
//! addition to the human-readable table.
//!
//! Two axes:
//!
//! * **Backend.** The in-process backend runs the full grid (it is the
//!   only backend allowing omniscient attacks); the threaded,
//!   simulated-server, and asynchronous simulated-server backends run the
//!   grid minus the omniscient columns.
//!   Each JSON row records its **own** `grid` — the per-backend filter ×
//!   attack counts actually executed — so the file cannot claim 84 cells
//!   for a 56-cell run.
//! * **Aggregation threads.** Every grid runs at `aggregation_threads ∈
//!   {1, 4}`; suite workers share one pool per run. Parallel aggregation
//!   is bit-identical to serial, so this axis is pure throughput.
//! * **Recording.** Every grid runs with `Recording::Full` (the historical
//!   dense trace, one honest-cost pass per round) and
//!   `Recording::SummaryOnly` (lazy instrumentation off: no per-round
//!   loss/φ evaluation, no trace memory) — the JSON rows put the
//!   instrumentation cost next to the threads axis. Recording is pure
//!   observation, so the trajectories are identical on both rows.
//! * **Fleet workers.** The threaded backend additionally runs at
//!   `fleet_workers ∈ {1, 4}` (the event-loop worker knob). The other
//!   backends never consult the knob, so they run only at the default —
//!   duplicating their rows would time identical work twice.
//!
//! Run with: `cargo bench -p abft-bench --bench suite_throughput`

use abft_bench::fan_fixture;
use abft_dgd::RunOptions;
use abft_linalg::Vector;
use abft_scenario::{
    AsyncConfig, Backend, InProcess, NetworkModel, Recording, Scenario, ScenarioBuilder,
    ScenarioSuite, Simulated, Threaded,
};
use std::fmt::Write as _;
use std::time::Instant;

/// DGD iterations per cell — enough to exercise the hot loop, small enough
/// that the whole grid stays a seconds-scale bench.
const ITERATIONS: usize = 200;

/// The aggregation-thread axis every backend grid runs at.
const THREADS_AXIS: [usize; 2] = [1, 4];

/// The recording axis: dense instrumentation vs. instrumentation off.
const RECORDING_AXIS: [(&str, Recording); 2] = [
    ("full", Recording::Full),
    ("summary-only", Recording::SummaryOnly),
];

/// The event-loop fleet-worker axis (threaded backend only).
const FLEET_AXIS: [usize; 2] = [1, 4];

struct Row {
    backend: &'static str,
    threads: usize,
    fleet_workers: usize,
    recording: &'static str,
    filters: usize,
    attacks: usize,
    scenarios: usize,
    completed: usize,
    failed: usize,
    elapsed_s: f64,
    scenarios_per_sec: f64,
}

fn template(threads: usize, fleet_workers: usize, recording: Recording) -> ScenarioBuilder {
    // n = 9, f = 1 admits every registered filter (Bulyan needs 4f + 3).
    let (problem, x_h) = fan_fixture(9, 1);
    let mut options = RunOptions::paper_defaults(x_h);
    options.x0 = Vector::zeros(2);
    options.iterations = ITERATIONS;
    options.aggregation_threads = threads;
    options.fleet_workers = fleet_workers;
    Scenario::builder()
        .problem(&problem)
        .faults(1)
        .options(options)
        .record(recording)
}

fn main() {
    // The message-passing backends get the grid minus the omniscient
    // columns, so every timed cell is real work.
    let observable: Vec<&str> = abft_attacks::attack_names()
        .iter()
        .copied()
        .filter(|name| {
            abft_attacks::attack_by_name(name, 0)
                .map(|attack| !attack.is_omniscient())
                .unwrap_or(false)
        })
        .collect();
    let all_filters = abft_filters::filter_names();
    let all_attacks = abft_attacks::attack_names();
    let workers = ScenarioSuite::auto_workers();

    println!(
        "suite_throughput: {} filters x {} attacks (omniscient columns in-process only), \
         {ITERATIONS} iterations, {workers} workers, aggregation threads in {THREADS_AXIS:?}, \
         fleet workers in {FLEET_AXIS:?} (threaded only), recording in [full, summary-only]\n",
        all_filters.len(),
        all_attacks.len(),
    );
    println!(
        "{:<18} {:>7} {:>6} {:>13} {:>5} {:>9} {:>7} {:>10} {:>15}",
        "backend",
        "aggthr",
        "fleet",
        "recording",
        "cells",
        "completed",
        "failed",
        "elapsed",
        "scenarios/sec"
    );

    let mut rows = Vec::new();
    for threads in THREADS_AXIS {
        for (recording_name, recording) in RECORDING_AXIS {
            for fleet_workers in FLEET_AXIS {
                let full_grid = ScenarioSuite::grid_seeded(
                    &template(threads, fleet_workers, recording),
                    0,
                    all_filters,
                    all_attacks,
                    42,
                )
                .expect("registry grid builds");
                let wire_grid = ScenarioSuite::grid_seeded(
                    &template(threads, fleet_workers, recording),
                    0,
                    all_filters,
                    &observable,
                    42,
                )
                .expect("registry grid builds");

                // Only the threaded (event-loop) backend consults
                // `fleet_workers`; the other backends run once, on the
                // axis' first value.
                let mut backends: Vec<(&'static str, &ScenarioSuite, usize, Box<dyn Backend>)> =
                    vec![("threaded", &wire_grid, observable.len(), Box::new(Threaded))];
                if fleet_workers == FLEET_AXIS[0] {
                    backends.push((
                        "in-process",
                        &full_grid,
                        all_attacks.len(),
                        Box::new(InProcess),
                    ));
                    backends.push((
                        "simulated-server",
                        &wire_grid,
                        observable.len(),
                        Box::new(Simulated::server(NetworkModel::ideal())),
                    ));
                    backends.push((
                        "simulated-async",
                        &wire_grid,
                        observable.len(),
                        Box::new(Simulated::async_server(
                            NetworkModel::ideal(),
                            AsyncConfig::new(),
                        )),
                    ));
                }

                for (name, suite, attacks, backend) in &backends {
                    let started = Instant::now();
                    let outcome = suite.run_parallel_collect(backend.as_ref(), workers);
                    let elapsed_s = started.elapsed().as_secs_f64();
                    let completed = outcome.outcomes.iter().filter(|o| o.is_ok()).count();
                    let failed = outcome.outcomes.len() - completed;
                    let scenarios_per_sec = outcome.outcomes.len() as f64 / elapsed_s;
                    println!(
                        "{name:<18} {threads:>7} {fleet_workers:>6} {recording_name:>13} {:>5} \
                         {completed:>9} {failed:>7} {:>9.2}s {scenarios_per_sec:>15.1}",
                        suite.len(),
                        elapsed_s
                    );
                    rows.push(Row {
                        backend: name,
                        threads,
                        fleet_workers,
                        recording: recording_name,
                        filters: all_filters.len(),
                        attacks: *attacks,
                        scenarios: suite.len(),
                        completed,
                        failed,
                        elapsed_s,
                        scenarios_per_sec,
                    });
                }
            }
        }
    }

    // Workspace root, so CI and trend tooling find one canonical path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    std::fs::write(path, to_json(ITERATIONS, workers, &rows))
        .expect("BENCH_suite.json is writable");
    println!("\nwrote {path}");
}

/// Hand-rolled JSON (the workspace has no serde): stable field order, one
/// object per (backend, threads, fleet_workers, recording) cell, each
/// carrying the grid it actually ran.
fn to_json(iterations: usize, workers: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"suite_throughput\",");
    let _ = writeln!(out, "  \"iterations\": {iterations},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(
        out,
        "  \"threads_axis\": [{}],",
        THREADS_AXIS.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(
        out,
        "  \"fleet_axis\": [{}],",
        FLEET_AXIS.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(
        out,
        "  \"recording_axis\": [{}],",
        RECORDING_AXIS
            .map(|(name, _)| format!("\"{name}\""))
            .join(", ")
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"threads\": {}, \"fleet_workers\": {}, \
             \"recording\": \"{}\", \
             \"grid\": {{\"filters\": {}, \"attacks\": {}}}, \"scenarios\": {}, \
             \"completed\": {}, \"failed\": {}, \"elapsed_s\": {:.4}, \
             \"scenarios_per_sec\": {:.2}}}{comma}",
            row.backend,
            row.threads,
            row.fleet_workers,
            row.recording,
            row.filters,
            row.attacks,
            row.scenarios,
            row.completed,
            row.failed,
            row.elapsed_s,
            row.scenarios_per_sec
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
