//! Scenario-suite throughput: the full registered filters × attacks grid
//! (14 × 6 = 84 cells) as one parallel `ScenarioSuite`, timed end to end.
//!
//! Unlike the criterion benches this is a *workload* bench: it measures
//! scenarios/second for the whole grid — the number that governs how fast
//! sweep experiments and CI-scale regression grids run — and emits the
//! results machine-readably to `BENCH_suite.json` (for trend tracking) in
//! addition to the human-readable table.
//!
//! Run with: `cargo bench -p abft-bench --bench suite_throughput`

use abft_bench::fan_fixture;
use abft_dgd::RunOptions;
use abft_linalg::Vector;
use abft_scenario::{
    Backend, InProcess, NetworkModel, Scenario, ScenarioSuite, Simulated, Threaded,
};
use std::fmt::Write as _;
use std::time::Instant;

/// DGD iterations per cell — enough to exercise the hot loop, small enough
/// that the whole grid stays a seconds-scale bench.
const ITERATIONS: usize = 200;

struct Row {
    backend: &'static str,
    scenarios: usize,
    completed: usize,
    failed: usize,
    elapsed_s: f64,
    scenarios_per_sec: f64,
}

fn main() {
    // n = 9, f = 1 admits every registered filter (Bulyan needs 4f + 3).
    let (problem, x_h) = fan_fixture(9, 1);
    let mut options = RunOptions::paper_defaults(x_h);
    options.x0 = Vector::zeros(2);
    options.iterations = ITERATIONS;
    let template = Scenario::builder()
        .problem(&problem)
        .faults(1)
        .options(options);

    // The headline 14 × 6 grid runs in-process (the only backend allowing
    // omniscient attacks); the message-passing backends get the same grid
    // minus the two omniscient columns, so every timed cell is real work.
    let full_grid = ScenarioSuite::grid_seeded(
        &template,
        0,
        abft_filters::filter_names(),
        abft_attacks::attack_names(),
        42,
    )
    .expect("registry grid builds");
    let observable: Vec<&str> = abft_attacks::attack_names()
        .iter()
        .copied()
        .filter(|name| {
            abft_attacks::attack_by_name(name, 0)
                .map(|attack| !attack.is_omniscient())
                .unwrap_or(false)
        })
        .collect();
    let wire_grid =
        ScenarioSuite::grid_seeded(&template, 0, abft_filters::filter_names(), &observable, 42)
            .expect("registry grid builds");
    let workers = ScenarioSuite::auto_workers();

    let backends: Vec<(&'static str, &ScenarioSuite, Box<dyn Backend>)> = vec![
        ("in-process", &full_grid, Box::new(InProcess)),
        ("threaded", &wire_grid, Box::new(Threaded)),
        (
            "simulated-server",
            &wire_grid,
            Box::new(Simulated::server(NetworkModel::ideal())),
        ),
    ];

    println!(
        "suite_throughput: {} filters x {} attacks, {ITERATIONS} iterations, {workers} workers\n",
        abft_filters::filter_names().len(),
        abft_attacks::attack_names().len(),
    );
    println!(
        "{:<18} {:>5} {:>9} {:>7} {:>10} {:>15}",
        "backend", "cells", "completed", "failed", "elapsed", "scenarios/sec"
    );

    let mut rows = Vec::new();
    for (name, suite, backend) in &backends {
        let started = Instant::now();
        let outcome = suite.run_parallel_collect(backend.as_ref(), workers);
        let elapsed_s = started.elapsed().as_secs_f64();
        let completed = outcome.outcomes.iter().filter(|o| o.is_ok()).count();
        let failed = outcome.outcomes.len() - completed;
        let scenarios_per_sec = outcome.outcomes.len() as f64 / elapsed_s;
        println!(
            "{name:<18} {:>5} {completed:>9} {failed:>7} {:>9.2}s {scenarios_per_sec:>15.1}",
            suite.len(),
            elapsed_s
        );
        rows.push(Row {
            backend: name,
            scenarios: suite.len(),
            completed,
            failed,
            elapsed_s,
            scenarios_per_sec,
        });
    }

    // Workspace root, so CI and trend tooling find one canonical path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    std::fs::write(path, to_json(ITERATIONS, workers, &rows))
        .expect("BENCH_suite.json is writable");
    println!("\nwrote {path}");
}

/// Hand-rolled JSON (the workspace has no serde): stable field order, one
/// object per backend.
fn to_json(iterations: usize, workers: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"suite_throughput\",");
    let _ = writeln!(
        out,
        "  \"grid\": {{\"filters\": {}, \"attacks\": {}}},",
        abft_filters::filter_names().len(),
        abft_attacks::attack_names().len()
    );
    let _ = writeln!(out, "  \"iterations\": {iterations},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"scenarios\": {}, \"completed\": {}, \"failed\": {}, \
             \"elapsed_s\": {:.4}, \"scenarios_per_sec\": {:.2}}}{comma}",
            row.backend,
            row.scenarios,
            row.completed,
            row.failed,
            row.elapsed_s,
            row.scenarios_per_sec
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
