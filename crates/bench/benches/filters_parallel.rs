//! Thread-scaling of the sharded aggregation path at the production shape
//! (`n = 100` gradients of dimension `d = 10 000`).
//!
//! For each filter the same reused `GradientBatch` is aggregated with no
//! pool (serial) and with worker pools of 2 and 4 threads; the speedup
//! table prints `serial / parallel` per thread count. Outputs are asserted
//! **bit-identical** across all variants before anything is timed — the
//! pool contract means the knob buys wall-clock only.
//!
//! The acceptance target for this suite is ≥ 2× on CWTM at 4 threads on a
//! ≥ 4-core machine (thread counts beyond the hardware's cores timeshare
//! and cannot speed up — the table prints the machine's parallelism for
//! context). This is a workload bench (manual timing, like
//! `suite_throughput`), not a criterion microbench: one aggregation at
//! this shape is milliseconds, and the table *is* the deliverable.
//!
//! Run with: `cargo bench -p abft-bench --bench filters_parallel`

use abft_bench::gradient_bundle;
use abft_filters::{batch_of, by_name};
use abft_linalg::{Vector, WorkerPool};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 100;
const F: usize = 10;
const DIM: usize = 10_000;
const THREADS: [usize; 2] = [2, 4];

/// The filters the tentpole parallelizes: the per-coordinate family
/// (column tiles) and the distance-based family (score rows).
const FILTERS: [&str; 7] = [
    "cwtm",
    "cwmed",
    "sign-majority",
    "mean",
    "cge",
    "krum",
    "geomed",
];

/// Median wall-clock seconds of `reps` aggregations.
fn time_aggregations(
    filter: &dyn abft_filters::GradientFilter,
    batch: &abft_linalg::GradientBatch,
    out: &mut Vector,
    reps: usize,
) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        filter
            .aggregate_into(black_box(batch), F, out)
            .expect("aggregates");
        samples.push(started.elapsed().as_secs_f64());
        black_box(&out);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let gradients = gradient_bundle(N, F, DIM, 42);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "filters_parallel: n = {N}, d = {DIM}, f = {F}, threads in {THREADS:?} \
         (machine parallelism: {cores})\n"
    );
    println!(
        "{:<14} {:>11} {:>11} {:>7} {:>11} {:>7}",
        "filter", "serial ms", "2t ms", "2t x", "4t ms", "4t x"
    );

    let mut cwtm_speedup_4t = 0.0;
    for name in FILTERS {
        let filter = by_name(name).expect("registered");
        // Iterative/quadratic filters are slower per call; fewer reps keep
        // the bench seconds-scale without hurting the median.
        let reps = match name {
            "krum" | "geomed" => 5,
            _ => 9,
        };

        let serial_batch = batch_of(&gradients).expect("batch builds");
        let mut serial_out = Vector::zeros(DIM);
        // Warm the scratch arena, then measure.
        let _ = time_aggregations(filter.as_ref(), &serial_batch, &mut serial_out, 2);
        let serial = time_aggregations(filter.as_ref(), &serial_batch, &mut serial_out, reps);

        let mut cells = Vec::new();
        for threads in THREADS {
            let mut batch = batch_of(&gradients).expect("batch builds");
            batch.set_worker_pool(Some(Arc::new(WorkerPool::new(threads))));
            let mut out = Vector::zeros(DIM);
            let _ = time_aggregations(filter.as_ref(), &batch, &mut out, 2);
            let parallel = time_aggregations(filter.as_ref(), &batch, &mut out, reps);
            assert!(
                serial_out
                    .iter()
                    .zip(out.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{name}: {threads}-thread output diverged from serial"
            );
            let speedup = serial / parallel;
            if name == "cwtm" && threads == 4 {
                cwtm_speedup_4t = speedup;
            }
            cells.push((parallel, speedup));
        }
        println!(
            "{name:<14} {:>11.3} {:>11.3} {:>6.2}x {:>11.3} {:>6.2}x",
            serial * 1e3,
            cells[0].0 * 1e3,
            cells[0].1,
            cells[1].0 * 1e3,
            cells[1].1,
        );
    }

    println!(
        "\nacceptance: CWTM at 4 threads = {cwtm_speedup_4t:.2}x \
         (target >= 2x on a >= 4-core machine)"
    );
    if cores >= 4 && cwtm_speedup_4t < 2.0 {
        eprintln!("WARNING: CWTM 4-thread speedup below the 2x target on this machine");
    }
}
