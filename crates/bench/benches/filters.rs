//! Filter-throughput ablation: aggregation cost of every registered filter
//! across (n, d) scales, including the high-dimensional regime where CWTM's
//! per-coordinate sort dominates and CGE's single norm-sort wins.

use abft_bench::gradient_bundle;
use abft_filters::all_filters;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_aggregate");
    for (n, f, dim) in [(10usize, 1usize, 10usize), (10, 1, 1000), (50, 5, 100)] {
        let bundle = gradient_bundle(n, f, dim, 42);
        for filter in all_filters() {
            group.bench_with_input(
                BenchmarkId::new(filter.name(), format!("n{n}_d{dim}")),
                &bundle,
                |b, bundle| {
                    b.iter(|| {
                        // Some filters have (n, f) preconditions; errors are
                        // still "work" worth timing consistently.
                        let _ = black_box(filter.aggregate(black_box(bundle), f));
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
