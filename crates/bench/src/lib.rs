//! Shared fixtures for the criterion benches.
//!
//! Each bench target regenerates (or exercises the driver of) one paper
//! table/figure — see `DESIGN.md` §5 — plus ablation benches for filter
//! throughput, the exact algorithm's combinatorial cost, and the EIG
//! broadcast.

use abft_core::SystemConfig;
use abft_linalg::rng::{gaussian_vector, seeded_rng};
use abft_linalg::Vector;
use abft_problems::RegressionProblem;

/// A bundle of `n` pseudo-gradients (honest cluster + `f` outliers) for
/// filter throughput benches.
pub fn gradient_bundle(n: usize, f: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = seeded_rng(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let scale = if i < f { 100.0 } else { 1.0 };
        out.push(gaussian_vector(&mut rng, dim, 0.0, scale));
    }
    out
}

/// The paper's regression instance plus its honest minimizer.
pub fn paper_fixture() -> (RegressionProblem, Vector) {
    let problem = RegressionProblem::paper_instance();
    let x_h = problem
        .subset_minimizer(&[1, 2, 3, 4, 5])
        .expect("paper stack is full rank");
    (problem, x_h)
}

/// A fan instance of arbitrary size with its honest minimizer (agents
/// `f..n` honest).
pub fn fan_fixture(n: usize, f: usize) -> (RegressionProblem, Vector) {
    let config = SystemConfig::new(n, f).expect("valid (n, f)");
    let problem = RegressionProblem::fan(config, 160.0, 0.02, 7).expect("fan instance generable");
    let honest: Vec<usize> = (f..n).collect();
    let x_h = problem
        .subset_minimizer(&honest)
        .expect("fan stack is full rank");
    (problem, x_h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_has_requested_shape() {
        let gs = gradient_bundle(8, 2, 16, 1);
        assert_eq!(gs.len(), 8);
        assert!(gs.iter().all(|g| g.dim() == 16));
        // Outliers are the first f and visibly larger.
        assert!(gs[0].norm() > gs[7].norm());
    }

    #[test]
    fn fixtures_are_consistent() {
        let (p, x_h) = paper_fixture();
        assert_eq!(p.config().n(), 6);
        assert_eq!(x_h.dim(), 2);
        let (p, x_h) = fan_fixture(9, 2);
        assert_eq!(p.config().n(), 9);
        assert_eq!(x_h.dim(), 2);
    }
}
