//! Throughput regression gate over `BENCH_suite.json`.
//!
//! Compares a freshly generated suite-throughput report against a
//! committed baseline and fails (exit code 1) when any tracked backend's
//! `scenarios_per_sec` drops by more than the tolerance — how CI keeps the
//! event-loop runtime from quietly sliding back toward the historical
//! thread-per-agent gap, and the in-process and simulated-server drivers
//! from absorbing hidden per-round costs.
//!
//! ```text
//! suite_regression <baseline.json> <current.json> \
//!     [--backend <name>]... [--tolerance 0.20]
//! ```
//!
//! Rows are keyed by `(backend, threads, fleet_workers, recording)`; only
//! rows for the selected backends are compared (`--backend` repeats; the
//! default tracks `threaded`, `in-process`, `simulated-server`, and
//! `simulated-async`), and a
//! baseline row with no matching current row is itself a failure. The
//! parser targets the writer in `benches/suite_throughput.rs` — one result
//! object per line, stable field order — because the workspace
//! deliberately carries no serde.

use std::process::ExitCode;

/// The backends gated by default when no `--backend` flag is given.
const DEFAULT_BACKENDS: [&str; 4] = [
    "threaded",
    "in-process",
    "simulated-server",
    "simulated-async",
];

/// One `results` row of `BENCH_suite.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchRow {
    backend: String,
    threads: usize,
    fleet_workers: usize,
    recording: String,
    scenarios_per_sec: f64,
}

/// Extracts the JSON value following `"key": ` in `line`, up to the next
/// `,` or `}` — sufficient for the flat, one-object-per-line rows the
/// bench writes.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// The same field, unquoting a JSON string value.
fn string_field(line: &str, key: &str) -> Option<String> {
    field(line, key).map(|raw| raw.trim_matches('"').to_string())
}

/// Parses every `results` row in the report. Reports from before the
/// fleet-worker axis carry no `fleet_workers` field; those rows ran at the
/// default of 1.
fn parse_rows(json: &str) -> Vec<BenchRow> {
    json.lines()
        .filter(|line| line.trim_start().starts_with('{') && line.contains("\"backend\""))
        .filter_map(|line| {
            Some(BenchRow {
                backend: string_field(line, "backend")?,
                threads: field(line, "threads")?.parse().ok()?,
                fleet_workers: field(line, "fleet_workers")
                    .and_then(|raw| raw.parse().ok())
                    .unwrap_or(1),
                recording: string_field(line, "recording")?,
                scenarios_per_sec: field(line, "scenarios_per_sec")?.parse().ok()?,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut backends: Vec<String> = Vec::new();
    let mut tolerance = 0.20f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => match iter.next() {
                Some(value) => backends.push(value.clone()),
                None => return usage("--backend needs a value"),
            },
            "--tolerance" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(value) if (0.0..1.0).contains(&value) => tolerance = value,
                _ => return usage("--tolerance needs a fraction in [0, 1)"),
            },
            path => paths.push(path.to_string()),
        }
    }
    if backends.is_empty() {
        backends = DEFAULT_BACKENDS.map(String::from).to_vec();
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage("expected exactly two report paths");
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("suite_regression: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline_json), Some(current_json)) = (read(baseline_path), read(current_path))
    else {
        return ExitCode::FAILURE;
    };
    let baseline: Vec<BenchRow> = parse_rows(&baseline_json)
        .into_iter()
        .filter(|row| backends.contains(&row.backend))
        .collect();
    for backend in &backends {
        if !baseline.iter().any(|row| row.backend == *backend) {
            eprintln!("suite_regression: no '{backend}' rows in baseline {baseline_path}");
            return ExitCode::FAILURE;
        }
    }
    let current = parse_rows(&current_json);

    let mut failed = false;
    for base in &baseline {
        let Some(now) = current.iter().find(|row| {
            row.backend == base.backend
                && row.threads == base.threads
                && row.fleet_workers == base.fleet_workers
                && row.recording == base.recording
        }) else {
            eprintln!(
                "FAIL {} threads={} fleet={} recording={}: row missing from {current_path}",
                base.backend, base.threads, base.fleet_workers, base.recording
            );
            failed = true;
            continue;
        };
        let floor = base.scenarios_per_sec * (1.0 - tolerance);
        let verdict = if now.scenarios_per_sec < floor {
            failed = true;
            "FAIL"
        } else {
            "ok  "
        };
        println!(
            "{verdict} {:<18} threads={} fleet={} recording={:>12}: {:.1}/s vs baseline \
             {:.1}/s (floor {:.1}/s at {:.0}% tolerance)",
            base.backend,
            base.threads,
            base.fleet_workers,
            base.recording,
            now.scenarios_per_sec,
            base.scenarios_per_sec,
            floor,
            tolerance * 100.0
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "suite_regression: {problem}\n\
         usage: suite_regression <baseline.json> <current.json> \
         [--backend <name>]... [--tolerance <fraction>]"
    );
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "results": [
    {"backend": "in-process", "threads": 1, "fleet_workers": 1, "recording": "full", "grid": {"filters": 7, "attacks": 12}, "scenarios": 84, "completed": 84, "failed": 0, "elapsed_s": 0.0235, "scenarios_per_sec": 3569.27},
    {"backend": "threaded", "threads": 4, "fleet_workers": 4, "recording": "summary-only", "grid": {"filters": 7, "attacks": 8}, "scenarios": 56, "completed": 56, "failed": 0, "elapsed_s": 0.2299, "scenarios_per_sec": 243.58}
  ]
}"#;

    #[test]
    fn rows_parse_with_their_keys() {
        let rows = parse_rows(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "in-process");
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[0].fleet_workers, 1);
        assert_eq!(rows[0].recording, "full");
        assert!((rows[0].scenarios_per_sec - 3569.27).abs() < 1e-9);
        assert_eq!(rows[1].backend, "threaded");
        assert_eq!(rows[1].threads, 4);
        assert_eq!(rows[1].fleet_workers, 4);
        assert_eq!(rows[1].recording, "summary-only");
    }

    #[test]
    fn rows_without_a_fleet_field_default_to_one_worker() {
        let legacy = r#"    {"backend": "threaded", "threads": 1, "recording": "full", "scenarios": 56, "scenarios_per_sec": 100.00}"#;
        let rows = parse_rows(legacy);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].fleet_workers, 1);
    }

    #[test]
    fn nested_grid_object_does_not_confuse_the_field_scan() {
        let line = SAMPLE.lines().nth(2).unwrap();
        assert_eq!(field(line, "scenarios"), Some("84"));
        assert_eq!(field(line, "failed"), Some("0"));
    }
}
