//! The workspace-wide call graph: stage 1's parsed items resolved into
//! nodes (functions) and edges (call sites), with a conservative
//! class-hierarchy approximation for dispatch.
//!
//! Resolution is name-based — the parser has no type inference — and
//! errs toward *more* edges, never fewer:
//!
//! - `.method(…)` fans out to **every** workspace method of that name:
//!   impl methods and trait default bodies alike. This is what makes a
//!   call through `GradientFilter`/`ByzantineStrategy`/`CostFunction`/
//!   `RunObserver`/`MessageBus` reach every registered implementation —
//!   the receiver's static type is unknown, so all candidates are
//!   assumed callable.
//! - `Type::assoc(…)` resolves to methods of impl blocks for `Type` when
//!   the workspace defines any; `Trait::method(…)` fans out to every
//!   impl of that trait plus its default bodies; `Self::assoc(…)`
//!   resolves against the enclosing impl.
//! - `free(…)` and `module::free(…)` resolve to every free function of
//!   that name (module paths are not tracked — another over-
//!   approximation in the conservative direction).
//!
//! Calls that resolve to nothing (std, vendored crates) produce no
//! edges; their hazards are what the parser's *sink* extraction covers.

use crate::parse::{FnItem, Owner, ParsedSource, Sink};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 0-based line of the call site in the **caller's** file.
    pub call_line: usize,
}

/// One call-graph node: a function, its location, and its hazard sites.
#[derive(Debug)]
pub struct Node {
    /// Workspace-relative file the function is defined in.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// `Type::name` display form.
    pub display: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    pub owner: Owner,
    pub sinks: Vec<Sink>,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Out-edges per node, sorted by `(to, call_line)` for deterministic
    /// traversal.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph from every parsed `src/` file. `files` must be
    /// pre-sorted by path (the workspace walker sorts), which makes node
    /// ids — and therefore every downstream ordering — deterministic.
    pub fn build(files: &[ParsedSource]) -> CallGraph {
        // Flatten nodes, remembering which FnItem each came from.
        let mut nodes = Vec::new();
        let mut fn_refs: Vec<(&ParsedSource, &FnItem)> = Vec::new();
        for file in files {
            for item in &file.items.fns {
                nodes.push(Node {
                    file: file.rel.clone(),
                    name: item.name.clone(),
                    display: item.display(),
                    line: item.line,
                    owner: item.owner.clone(),
                    sinks: item.sinks.clone(),
                });
                fn_refs.push((file, item));
            }
        }

        // Indexes. BTreeMap keeps candidate lists in deterministic order.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut type_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut trait_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut trait_names: Vec<&str> = Vec::new();
        for file in files {
            for (name, _) in &file.items.traits {
                trait_names.push(name);
            }
        }
        for (id, node) in nodes.iter().enumerate() {
            match &node.owner {
                Owner::Free => free.entry(&node.name).or_default().push(id),
                Owner::Impl {
                    self_ty,
                    trait_name,
                } => {
                    methods.entry(&node.name).or_default().push(id);
                    type_methods
                        .entry((self_ty, &node.name))
                        .or_default()
                        .push(id);
                    if let Some(t) = trait_name {
                        trait_methods.entry((t, &node.name)).or_default().push(id);
                        if !trait_names.contains(&t.as_str()) {
                            trait_names.push(t);
                        }
                    }
                }
                Owner::Trait { trait_name } => {
                    methods.entry(&node.name).or_default().push(id);
                    trait_methods
                        .entry((trait_name, &node.name))
                        .or_default()
                        .push(id);
                }
            }
        }

        // Resolve calls.
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (id, (_, item)) in fn_refs.iter().enumerate() {
            let mut out: Vec<Edge> = Vec::new();
            for call in &item.calls {
                let callee = call.callee.as_str();
                let targets: Vec<usize> = if call.method {
                    // `.m(…)`: unknown receiver — every method named `m`.
                    methods.get(callee).cloned().unwrap_or_default()
                } else if let Some(q) = call.qualifier.as_deref() {
                    let q = if q == "Self" {
                        match &nodes[id].owner {
                            Owner::Impl { self_ty, .. } => self_ty.as_str(),
                            Owner::Trait { trait_name } => trait_name.as_str(),
                            Owner::Free => q,
                        }
                    } else {
                        q
                    };
                    let typed = type_methods.get(&(q, callee)).cloned().unwrap_or_default();
                    if !typed.is_empty() {
                        typed
                    } else if trait_names.contains(&q) {
                        // `Trait::method(recv, …)` — every impl + the
                        // default body.
                        trait_methods.get(&(q, callee)).cloned().unwrap_or_default()
                    } else {
                        // A module path (or a std type): free functions
                        // by name.
                        free.get(callee).cloned().unwrap_or_default()
                    }
                } else {
                    free.get(callee).cloned().unwrap_or_default()
                };
                for to in targets {
                    out.push(Edge {
                        to,
                        call_line: call.line,
                    });
                }
            }
            out.sort_by_key(|e| (e.to, e.call_line));
            out.dedup();
            edges[id] = out;
        }

        CallGraph { nodes, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedSource> = files
            .iter()
            .map(|(rel, src)| parse_source(rel, src))
            .collect();
        CallGraph::build(&parsed)
    }

    fn edge_exists(g: &CallGraph, from: &str, to: &str) -> bool {
        let from_id = g.nodes.iter().position(|n| n.display == from).unwrap();
        g.edges[from_id].iter().any(|e| g.nodes[e.to].display == to)
    }

    #[test]
    fn free_calls_resolve_across_crates() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() {\n    helper();\n}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert!(edge_exists(&g, "entry", "helper"));
    }

    #[test]
    fn method_calls_fan_out_to_every_impl() {
        let src_trait =
            "pub trait Filter {\n    fn apply(&self);\n}\npub struct A;\npub struct B;\nimpl Filter for A {\n    fn apply(&self) {}\n}\nimpl Filter for B {\n    fn apply(&self) {}\n}\n";
        let src_caller = "pub fn run(f: &dyn Filter) {\n    f.apply();\n}\n";
        let g = graph_of(&[
            ("crates/f/src/lib.rs", src_trait),
            ("crates/r/src/lib.rs", src_caller),
        ]);
        assert!(edge_exists(&g, "run", "A::apply"));
        assert!(edge_exists(&g, "run", "B::apply"));
    }

    #[test]
    fn qualified_calls_resolve_by_type() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub struct V;\nimpl V {\n    pub fn zeros() -> V { V }\n}\npub struct W;\nimpl W {\n    pub fn zeros() -> W { W }\n}\npub fn f() {\n    let _ = V::zeros();\n}\n",
        )]);
        assert!(edge_exists(&g, "f", "V::zeros"));
        assert!(!edge_exists(&g, "f", "W::zeros"));
    }

    #[test]
    fn self_calls_resolve_within_the_impl() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub struct V;\nimpl V {\n    pub fn a() {\n        Self::b();\n    }\n    pub fn b() {}\n}\n",
        )]);
        assert!(edge_exists(&g, "V::a", "V::b"));
    }

    #[test]
    fn trait_default_bodies_are_nodes_with_edges() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub trait T {\n    fn base(&self);\n    fn derived(&self) {\n        self.base();\n    }\n}\npub struct X;\nimpl T for X {\n    fn base(&self) {}\n}\n",
        )]);
        assert!(edge_exists(&g, "T::derived", "T::base"));
        assert!(edge_exists(&g, "T::derived", "X::base"));
    }

    #[test]
    fn unresolvable_calls_produce_no_edges() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn f() {\n    let v: Vec<f64> = Vec::new();\n    drop(v);\n}\n",
        )]);
        let f = g.nodes.iter().position(|n| n.name == "f").unwrap();
        assert!(g.edges[f].is_empty());
    }
}
