//! `abft-lint`: a std-only static-analysis pass enforcing the repo's two
//! load-bearing guarantees — bit-identical traces at any thread/worker
//! count, and a never-panic aggregation path — as mechanical, named rules
//! instead of conventions.
//!
//! The scanner is deliberately line-level (no `syn`: the container is
//! vendored-only): a small lexer blanks comments, string literals, and
//! char literals out of every line, tracks `#[cfg(test)]` regions by brace
//! matching, and then applies token-level rules to the surviving code.
//! That is coarse, but every invariant below is phrased so a token match
//! is the right signal — and the escape hatch is explicit and audited:
//!
//! ```text
//! // LINT-ALLOW(float-total-order): reason the exception is sound
//! ```
//!
//! on the flagged line (trailing comment) or the comment lines directly
//! above it. A pragma without a reason, or naming an unknown rule, is
//! itself a violation — every exception stays a reviewed, justified line.
//!
//! # Rules
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `float-total-order` | no `partial_cmp` anywhere: float comparators must be `f64::total_cmp`, so a NaN orders deterministically instead of panicking or collapsing the sort |
//! | `no-panic-hot-path` | no `unwrap`/`expect`/`panic!`/`assert!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code of the aggregation-path crates (`filters`, `linalg`, `runtime`, `dgd`); `debug_assert!` is exempt |
//! | `unsafe-needs-safety` | every `unsafe` occurrence carries a `// SAFETY:` comment (or a `# Safety` doc section) on the line or directly above it |
//! | `deterministic-collections` | no `HashMap`/`HashSet` in crate sources: iteration order must not depend on hashing, use `BTreeMap`/`BTreeSet`/`Vec` |
//! | `fixed-schedule` | no `thread::spawn`/`.spawn(` outside `linalg/src/pool.rs` and `runtime/src/fleet.rs`, and no `Instant::now` outside the bench crate and `telemetry/src/clock.rs` (the sanctioned clock home) — work schedules are pure functions of the input, never of timing |
//!
//! The library half ([`lint_source`], [`lint_workspace`]) exists so the
//! fixture tests and the `workspace_clean` gate run in-process under
//! `cargo test -p abft-lint`; the binary half wraps it for CI and local
//! use (`cargo run -p abft-lint`, add `--json` for machine output).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub mod graph;
pub mod parse;
pub mod reach;

/// The registered rule names, in diagnostic order. The first five are
/// line-level (stage 1); `panic-reach` and `determinism-taint` are the
/// call-graph reachability rules (stage 2, see [`reach`]); `pragma`
/// covers malformed `LINT-ALLOW` annotations themselves.
pub const RULES: &[&str] = &[
    "float-total-order",
    "no-panic-hot-path",
    "unsafe-needs-safety",
    "deterministic-collections",
    "fixed-schedule",
    "panic-reach",
    "determinism-taint",
    "pragma",
];

/// Crates whose `src/` trees must stay panic-free outside tests: the
/// aggregation hot path and everything a mid-round server executes.
const NO_PANIC_CRATES: &[&str] = &["filters", "linalg", "runtime", "dgd"];

/// Files allowed to spawn threads: the two fixed-schedule pools.
const SPAWN_ALLOWED: &[&str] = &["crates/linalg/src/pool.rs", "crates/runtime/src/fleet.rs"];

/// Files allowed to read the wall clock (besides the bench crate): the
/// telemetry crate's sanctioned clock home, which every metrics-only
/// wall-clock read in the stack funnels through.
const CLOCK_ALLOWED: &[&str] = &["crates/telemetry/src/clock.rs"];

/// One hop of a reachability witness chain: a function on the path from
/// a hot-path root to the offending site, located at its definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Display name (`Type::method` for impl methods, bare name for free
    /// functions).
    pub func: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the `fn` definition.
    pub line: usize,
}

/// One diagnostic: where, which rule, and what the line looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// What the rule guards and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// For the reachability rules: the witness call chain from a hot-path
    /// root to the function containing the site, root first. Empty for
    /// the line-level rules.
    pub chain: Vec<Hop>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(f, "    {}", self.excerpt)?;
        if !self.chain.is_empty() {
            let rendered: Vec<String> = self
                .chain
                .iter()
                .map(|h| format!("{} ({}:{})", h.func, h.file, h.line))
                .collect();
            write!(f, "\n    chain: {}", rendered.join(" → "))?;
        }
        Ok(())
    }
}

impl Violation {
    /// The violation as one JSON object (std-only serialization). The
    /// schema is stable: `file`, `line`, `rule`, `message`, `excerpt`,
    /// and `chain` (always present; `[]` for line-level rules), with
    /// every chain hop carrying `func`, `file`, `line`.
    pub fn to_json(&self) -> String {
        let chain: Vec<String> = self
            .chain
            .iter()
            .map(|h| {
                format!(
                    r#"{{"func":"{}","file":"{}","line":{}}}"#,
                    escape_json(&h.func),
                    escape_json(&h.file),
                    h.line
                )
            })
            .collect();
        format!(
            r#"{{"file":"{}","line":{},"rule":"{}","message":"{}","excerpt":"{}","chain":[{}]}}"#,
            escape_json(&self.file),
            self.line,
            self.rule,
            escape_json(&self.message),
            escape_json(&self.excerpt),
            chain.join(",")
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lexing: blank comments and literals out of the code, keep comments aside.
// ---------------------------------------------------------------------------

/// One source line after masking: `code` with comments/strings blanked,
/// `comment` holding the line's comment text (for SAFETY / pragma checks).
#[derive(Debug, Default, Clone)]
pub(crate) struct MaskedLine {
    pub(crate) code: String,
    pub(crate) comment: String,
}

/// Splits `source` into per-line code and comment streams. String and char
/// literal *contents* are dropped from the code stream (the delimiters
/// stay), so tokens inside literals never match a rule; comment text —
/// line, block, and doc comments alike — lands in the comment stream, so
/// `SAFETY:` and `LINT-ALLOW` annotations stay visible.
pub(crate) fn mask(source: &str) -> Vec<MaskedLine> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let bytes = source.as_bytes();
    let mut lines = Vec::new();
    let mut cur = MaskedLine::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    cur.code.push('"');
                    i += 1;
                } else if let Some(hashes) = raw_string_open(bytes, i) {
                    state = State::RawStr(hashes);
                    cur.code.push_str("r\"");
                    i += raw_open_len(bytes, i);
                } else if b == b'\'' {
                    if let Some(end) = char_literal_end(bytes, i) {
                        cur.code.push_str("''");
                        i = end;
                    } else {
                        // A lifetime, not a literal.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(b as char);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    cur.comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    cur.comment.push_str("/*");
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(b as char);
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    // Skip the escaped byte — except a line continuation,
                    // whose newline must still close the current line.
                    i += if bytes.get(i + 1) == Some(&b'\n') {
                        1
                    } else {
                        2
                    };
                } else if b == b'"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Don't emit a phantom line after a trailing newline — line counts
    // must match `source.lines()`.
    if !cur.code.is_empty() || !cur.comment.is_empty() || !source.ends_with('\n') {
        lines.push(cur);
    }
    lines
}

/// `Some(hash_count)` when position `i` opens a raw (byte) string literal
/// — `r"`, `r#"`, `br##"`, … Identifier characters directly before the
/// `r` (as in `agr"` being part of a name) disqualify it.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Byte length of the raw-string opener at `i` (`r###"` → 5).
fn raw_open_len(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    j + 1 - i
}

/// Whether the `"` at `i` is followed by `hashes` `#`s, closing a raw
/// string.
fn closes_raw(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// `Some(end_index)` when the `'` at `i` starts a char literal (as opposed
/// to a lifetime); `end_index` is one past the closing quote.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escaped char: scan for the closing quote, skipping escapes.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    b'\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        _ => (bytes.get(i + 2)? == &b'\'').then_some(i + 3),
    }
}

// ---------------------------------------------------------------------------
// #[cfg(test)] regions
// ---------------------------------------------------------------------------

/// Marks every line covered by a `#[cfg(test)]` item (attribute line
/// through the matching closing brace, or through the `;` of a
/// `mod tests;` declaration).
pub(crate) fn test_regions(lines: &[MaskedLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut line = 0;
    while line < lines.len() {
        let compact: String = lines[line]
            .code
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if !compact.contains("#[cfg(test)]") {
            line += 1;
            continue;
        }
        // Walk forward to the item's opening brace (or terminating `;`),
        // then to its matching close.
        let mut depth: i64 = 0;
        let mut opened = false;
        let start = line;
        'item: while line < lines.len() {
            for c in lines[line].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => break 'item, // `mod tests;`
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            line += 1;
        }
        let end = line.min(lines.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        line = end + 1;
    }
    in_test
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

/// Whether `line` contains `token` with identifier boundaries on both
/// sides (so `assert!` does not match inside `debug_assert!`).
pub(crate) fn has_word(line: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

/// A parsed `LINT-ALLOW` pragma: the rule it names and whether it carries
/// a non-empty reason.
pub(crate) struct Pragma {
    pub(crate) rule: String,
    pub(crate) has_reason: bool,
}

/// Extracts every pragma from one comment string.
pub(crate) fn pragmas_in(comment: &str) -> Vec<Pragma> {
    let mut found = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("LINT-ALLOW") {
        rest = &rest[pos + "LINT-ALLOW".len()..];
        let Some(open) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = open.find(')') else {
            continue;
        };
        let rule = open[..close].trim().to_string();
        let after = &open[close + 1..];
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|reason| !reason.trim().is_empty());
        found.push(Pragma { rule, has_reason });
        rest = after;
    }
    found
}

// ---------------------------------------------------------------------------
// The per-file pass
// ---------------------------------------------------------------------------

/// What part of the workspace a file belongs to, derived from its
/// workspace-relative path. Decides which rules apply.
struct FileScope<'a> {
    rel: &'a str,
    /// `crates/<name>/…` → `<name>`.
    crate_name: Option<&'a str>,
    /// Library/binary source (a `src/` tree) as opposed to `tests/`,
    /// `benches/`, or `examples/` targets.
    in_src: bool,
}

impl<'a> FileScope<'a> {
    fn of(rel: &'a str) -> Self {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next());
        FileScope {
            rel,
            crate_name,
            in_src: rel.contains("/src/") || rel.starts_with("src/"),
        }
    }

    fn no_panic_applies(&self) -> bool {
        self.in_src
            && self
                .crate_name
                .is_some_and(|c| NO_PANIC_CRATES.contains(&c))
    }

    fn fixed_schedule_applies(&self) -> bool {
        self.in_src && self.crate_name != Some("bench")
    }
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// (with `/` separators) and selects which rules apply — see the module
/// docs for the scoping table.
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    let scope = FileScope::of(rel);
    let masked = mask(source);
    let in_test = test_regions(&masked);
    let orig: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let mut push = |line_idx: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: rel.to_string(),
            line: line_idx + 1,
            rule,
            message,
            excerpt: orig
                .get(line_idx)
                .map_or(String::new(), |l| truncate(l.trim(), 160)),
            chain: Vec::new(),
        });
    };

    // Is a violation of `rule` on line `idx` covered by a pragma on the
    // same line or in the comment block directly above?
    let allowed = |idx: usize, rule: &str| {
        annotated(&masked, idx, &|line| {
            pragmas_in(&line.comment)
                .iter()
                .any(|p| p.rule == rule && p.has_reason)
        })
    };

    for (idx, line) in masked.iter().enumerate() {
        let code = line.code.as_str();

        // Malformed pragmas are violations wherever they appear, and are
        // never suppressible.
        for pragma in pragmas_in(&line.comment) {
            if !RULES.contains(&pragma.rule.as_str()) {
                push(
                    idx,
                    "pragma",
                    format!("LINT-ALLOW names unknown rule `{}`", pragma.rule),
                );
            } else if !pragma.has_reason {
                push(
                    idx,
                    "pragma",
                    format!(
                        "LINT-ALLOW({}) lacks a reason — every exception must be justified",
                        pragma.rule
                    ),
                );
            }
        }

        // float-total-order: everywhere, tests and benches included — a
        // partial comparator is wrong wherever it sorts floats.
        if has_word(code, "partial_cmp") && !allowed(idx, "float-total-order") {
            push(
                idx,
                "float-total-order",
                "`partial_cmp` breaks the total-order contract — use `f64::total_cmp` \
                 so NaN orders deterministically instead of panicking"
                    .to_string(),
            );
        }

        // unsafe-needs-safety: everywhere, tests included.
        if has_word(code, "unsafe") && !safety_documented(&masked, idx) {
            push(
                idx,
                "unsafe-needs-safety",
                "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                 on the line or directly above it"
                    .to_string(),
            );
        }

        if in_test[idx] {
            continue;
        }

        // no-panic-hot-path: non-test src of the aggregation-path crates.
        if scope.no_panic_applies() {
            const PANICS: &[&str] = &[
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ];
            let hit = PANICS.iter().any(|p| code.contains(p))
                || ["assert!", "assert_eq!", "assert_ne!"]
                    .iter()
                    .any(|p| has_word(code, &p[..p.len() - 1]) && code.contains(p));
            if hit && !allowed(idx, "no-panic-hot-path") {
                push(
                    idx,
                    "no-panic-hot-path",
                    format!(
                        "panicking construct in non-test code of the `{}` crate — \
                         return an error, or justify with a pragma",
                        scope.crate_name.unwrap_or("?")
                    ),
                );
            }
        }

        // deterministic-collections: all crate sources.
        if scope.in_src
            && (has_word(code, "HashMap") || has_word(code, "HashSet"))
            && !allowed(idx, "deterministic-collections")
        {
            push(
                idx,
                "deterministic-collections",
                "hashed collections iterate in nondeterministic order — \
                 use `BTreeMap`/`BTreeSet`/`Vec` on determinism-critical paths"
                    .to_string(),
            );
        }

        // fixed-schedule: spawning and timing outside the sanctioned homes.
        if scope.fixed_schedule_applies() {
            let spawns = (code.contains("thread::spawn") || code.contains(".spawn("))
                && !SPAWN_ALLOWED.contains(&scope.rel);
            if spawns && !allowed(idx, "fixed-schedule") {
                push(
                    idx,
                    "fixed-schedule",
                    "thread spawning outside `linalg/src/pool.rs`/`runtime/src/fleet.rs` — \
                     all parallelism must ride the fixed-schedule pools"
                        .to_string(),
                );
            }
            if code.contains("Instant::now")
                && !CLOCK_ALLOWED.contains(&scope.rel)
                && !allowed(idx, "fixed-schedule")
            {
                push(
                    idx,
                    "fixed-schedule",
                    "`Instant::now` outside the bench crate and `telemetry::clock` — \
                     timing must never feed control flow; route wall-clock metrics \
                     through `abft_telemetry::clock`"
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Whether the `unsafe` on line `idx` carries a safety comment: `SAFETY:`
/// in the same line's comment, or `SAFETY:`/`# Safety` anywhere in the
/// annotation run directly above (see [`annotated`]).
fn safety_documented(masked: &[MaskedLine], idx: usize) -> bool {
    annotated(masked, idx, &|line| {
        line.comment.contains("SAFETY:") || line.comment.contains("# Safety")
    })
}

/// Whether `matches` holds for line `idx`'s own comment or any comment in
/// the run directly above it. The upward walk skips blank lines,
/// attribute lines, and code lines that belong to the same multi-line
/// statement — recognized from **either side** of the line break: the
/// upper line visibly continuing (ending in `=`, `(`, `,`, or an
/// operator), or the lower line visibly being a continuation (starting
/// with `.`, `?`, a closing delimiter, or an operator). An annotation
/// above (or on the first line of) a multi-line statement therefore
/// covers the whole statement, including its continuation lines.
pub(crate) fn annotated(
    masked: &[MaskedLine],
    idx: usize,
    matches: &dyn Fn(&MaskedLine) -> bool,
) -> bool {
    if matches(&masked[idx]) {
        return true;
    }
    // The nearest non-blank code line at or below the walk position:
    // the line whose "am I a continuation?" shape decides whether the
    // line above it is part of the same statement.
    let mut below = masked[idx].code.trim().to_string();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &masked[j];
        let code = line.code.trim();
        let transparent = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            || ends_continued(code)
            || starts_continuation(&below);
        if !transparent {
            return false;
        }
        if matches(line) {
            return true;
        }
        if !code.is_empty() {
            below = code.to_string();
        }
    }
    false
}

/// Whether a line's code visibly continues onto the next line: it ends
/// mid-expression.
fn ends_continued(code: &str) -> bool {
    code.ends_with('=')
        || code.ends_with('(')
        || code.ends_with(',')
        || code.ends_with("&&")
        || code.ends_with("||")
        || code.ends_with('+')
}

/// Whether a line's code visibly continues the previous line: method
/// chains, `?` propagation, closing delimiters of multi-line calls, and
/// trailing binary operators broken before the operand.
fn starts_continuation(code: &str) -> bool {
    code.starts_with('.')
        || code.starts_with('?')
        || code.starts_with(')')
        || code.starts_with(']')
        || code.starts_with("&&")
        || code.starts_with("||")
        || code.starts_with('+')
}

pub(crate) fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Lints every Rust source file of the workspace rooted at `root`:
/// `crates/`, `src/`, `examples/`, and `tests/`, skipping `vendor/`
/// (external code), `target/`, and `fixtures/` directories (lint-test
/// inputs that violate rules on purpose).
///
/// Two stages run over the tree: the line-level rules ([`lint_source`])
/// per file, then the call-graph reachability rules (`panic-reach`,
/// `determinism-taint` — see [`reach`]) over an item-level parse of the
/// `src/` trees ([`parse`], [`graph`]). Returns the violations — sorted
/// by `(file, line, rule)` so output ordering is stable across runs and
/// platforms — plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> io::Result<(Vec<Violation>, usize)> {
    let mut files = Vec::new();
    for top in ["crates", "src", "examples", "tests"] {
        collect_rust_files(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut violations = Vec::new();
    let mut parsed = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_source(&rel, &source));
        // The reachability stage audits the library/binary source trees:
        // that is where hot-path roots and everything they can call live.
        // The lint crate itself is tool code — it is never linked into a
        // runtime binary, and name-based resolution would otherwise alias
        // its helpers (`build`, `check`, …) into the runtime graph.
        if FileScope::of(&rel).in_src && !rel.starts_with("crates/lint/") {
            parsed.push(parse::parse_source(&rel, &source));
        }
    }
    let graph = graph::CallGraph::build(&parsed);
    violations.extend(reach::check(&graph, &parsed));
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok((violations, files.len()))
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root this crate was compiled in — what the binary and
/// the `workspace_clean` gate lint by default.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_strings_and_comments() {
        let lines = mask("let x = \"partial_cmp\"; // partial_cmp here\nlet y = 1;");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].comment.contains("partial_cmp"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn masking_handles_raw_strings_chars_and_lifetimes() {
        let src =
            "let r = r#\"unsafe \"quoted\" unwrap()\"#;\nlet c = '\\'';\nfn f<'a>(x: &'a str) {}\n";
        let lines = mask(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[1].code.contains('\\'));
        assert!(lines[2].code.contains("&'a str"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let src = "a /* one\n /* two */ still\n done */ b";
        let lines = mask(src);
        assert_eq!(lines[0].code.trim(), "a");
        assert_eq!(lines[1].code.trim(), "");
        assert_eq!(lines[2].code.trim(), "b");
    }

    #[test]
    fn cfg_test_region_covers_the_braced_item() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let masked = mask(src);
        let regions = test_regions(&masked);
        assert_eq!(regions, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries_exclude_debug_assert() {
        assert!(has_word("assert!(x)", "assert"));
        assert!(!has_word("debug_assert!(x)", "assert"));
        assert!(has_word("a.partial_cmp(b)", "partial_cmp"));
    }

    #[test]
    fn pragma_parsing() {
        let ps = pragmas_in("// LINT-ALLOW(float-total-order): PartialOrd over integers");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].rule, "float-total-order");
        assert!(ps[0].has_reason);
        let bad = pragmas_in("// LINT-ALLOW(no-panic-hot-path):   ");
        assert!(!bad[0].has_reason);
    }
}
