//! Stage 2 of the reachability analysis: the `panic-reach` and
//! `determinism-taint` rules, run over the [`CallGraph`](crate::graph).
//!
//! Both rules ask the same question — *which hazardous sites can a
//! hot-path root reach?* — and differ only in what counts as hazardous:
//!
//! - **panic-reach**: panicking constructs (`unwrap`/`expect`,
//!   `panic!`-family macros, slice indexing) transitively reachable from
//!   a root, in *any* crate. This is `no-panic-hot-path` escalated from
//!   per-file syntax to whole-workspace semantics: a helper in
//!   `abft-core` that indexes a slice is a violation the moment a filter
//!   can call it.
//! - **determinism-taint**: clock reads, thread spawning,
//!   `HashMap`/`HashSet`, and entropy-seeded RNG reachable from a root —
//!   except at sites inside the sanctioned homes (`telemetry::clock`,
//!   `linalg::pool`, `runtime::fleet`), whose whole purpose is to contain
//!   exactly those constructs behind a deterministic interface.
//!
//! The hot-path roots are the functions a mid-round server executes:
//! every `aggregate_into` impl (reached through `GradientFilter`
//! dispatch), `Fleet::dispatch_round` (the worker fleet's round driver),
//! `execute_async_server` (the bounded-staleness loop), and the simulated
//! delivery paths `execute_server`/`execute_p2p`.
//!
//! Each violation carries a **witness chain** — the BFS path
//! `root → f → g → site` that proves reachability — rendered by the CLI
//! and serialized in `--json`. Suppression is edge- and site-scoped:
//!
//! - a `panic-reach`/`determinism-taint` pragma at a **call site** cuts
//!   that edge out of the rule's traversal (the annotation covers the
//!   edge it sits on, nothing more);
//! - the same pragma at a **sink line** (or at the `fn` definition line,
//!   covering the whole body) suppresses the site itself;
//! - the legacy line-rule pragma for the same hazard
//!   (`no-panic-hot-path` for panics, `fixed-schedule` for clocks and
//!   spawns, `deterministic-collections` for hashed collections) is
//!   honored at sink lines, so a site justified once is not re-litigated
//!   by the reachability pass.

use crate::graph::CallGraph;
use crate::parse::{ParsedSource, SinkKind};
use crate::{annotated, pragmas_in, truncate, Hop, Violation};
use std::collections::BTreeMap;

/// Files whose determinism sinks are sanctioned: the clock home, and the
/// two fixed-schedule pools. `panic-reach` deliberately has no such list —
/// nothing is allowed to panic mid-round.
const TAINT_HOMES: &[&str] = &[
    "crates/telemetry/src/clock.rs",
    "crates/linalg/src/pool.rs",
    "crates/runtime/src/fleet.rs",
];

/// Whether a node is a hot-path root: an entry point a mid-round server
/// executes, from which the reachability rules start.
fn is_root(node: &crate::graph::Node) -> bool {
    use crate::parse::Owner;
    match node.name.as_str() {
        // Every filter implementation, wherever it lives: an impl of
        // `GradientFilter` (or the trait's own declaration/default), or
        // any `aggregate_into` defined under the filters crate.
        "aggregate_into" => {
            node.file.starts_with("crates/filters/")
                || match &node.owner {
                    Owner::Impl {
                        trait_name: Some(t),
                        ..
                    } => t == "GradientFilter",
                    Owner::Trait { trait_name } => trait_name == "GradientFilter",
                    _ => false,
                }
        }
        "dispatch_round" => node.file.ends_with("runtime/src/fleet.rs"),
        "execute_async_server" => node.file.ends_with("src/async_server.rs"),
        "execute_server" | "execute_p2p" => node.file.ends_with("src/simulated.rs"),
        _ => false,
    }
}

/// One reachability rule's configuration.
struct Rule {
    name: &'static str,
    /// Does this sink kind belong to the rule?
    applies: fn(SinkKind) -> bool,
    /// The legacy line rule whose pragma also suppresses a sink of this
    /// kind (the hazard is the same, only the scope of the check grew).
    legacy: fn(SinkKind) -> Option<&'static str>,
    /// Sanctioned sink locations (exact workspace-relative paths).
    homes: &'static [&'static str],
}

const RULES: &[Rule] = &[
    Rule {
        name: "panic-reach",
        applies: |k| k == SinkKind::Panic,
        legacy: |_| Some("no-panic-hot-path"),
        homes: &[],
    },
    Rule {
        name: "determinism-taint",
        applies: |k| {
            matches!(
                k,
                SinkKind::Clock | SinkKind::Spawn | SinkKind::HashOrder | SinkKind::Entropy
            )
        },
        legacy: |k| match k {
            SinkKind::Clock | SinkKind::Spawn => Some("fixed-schedule"),
            SinkKind::HashOrder => Some("deterministic-collections"),
            _ => None,
        },
        homes: TAINT_HOMES,
    },
];

/// Runs both reachability rules over the graph. `files` is the same
/// parsed set the graph was built from (for pragma lookups and source
/// excerpts).
pub fn check(graph: &CallGraph, files: &[ParsedSource]) -> Vec<Violation> {
    let by_rel: BTreeMap<&str, &ParsedSource> = files.iter().map(|f| (f.rel.as_str(), f)).collect();

    // Is a pragma naming any of `rules` (with a reason) in force at
    // 0-based `line` of `rel` — on the line, or in the annotation run
    // directly above it?
    let allowed = |rel: &str, line: usize, rules: &[&str]| -> bool {
        let Some(src) = by_rel.get(rel) else {
            return false;
        };
        if line >= src.masked.len() {
            return false;
        }
        annotated(&src.masked, line, &|ml| {
            pragmas_in(&ml.comment)
                .iter()
                .any(|p| p.has_reason && rules.iter().any(|r| p.rule == *r))
        })
    };

    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&id| is_root(&graph.nodes[id]))
        .collect();

    let mut out = Vec::new();
    for rule in RULES {
        // BFS from all roots at once, recording one parent per node so
        // every reached function has a shortest witness chain. Roots and
        // edges are visited in deterministic (node-id) order.
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; graph.nodes.len()];
        let mut seen = vec![false; graph.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = roots.iter().copied().collect();
        for &r in &roots {
            seen[r] = true;
        }
        while let Some(id) = queue.pop_front() {
            for edge in &graph.edges[id] {
                if seen[edge.to] {
                    continue;
                }
                // An edge-site pragma for this rule cuts the edge.
                if allowed(&graph.nodes[id].file, edge.call_line, &[rule.name]) {
                    continue;
                }
                seen[edge.to] = true;
                parent[edge.to] = Some((id, edge.call_line));
                queue.push_back(edge.to);
            }
        }

        for (id, node) in graph.nodes.iter().enumerate() {
            if !seen[id] {
                continue;
            }
            let live: Vec<_> = node
                .sinks
                .iter()
                .filter(|s| (rule.applies)(s.kind))
                .collect();
            if live.is_empty() {
                continue;
            }
            // Sanctioned home: sinks *located* there are the contained
            // implementation the rest of the workspace is allowed to
            // reach.
            if rule.homes.contains(&node.file.as_str()) {
                continue;
            }
            // A pragma on the `fn` line covers the whole body.
            if allowed(&node.file, node.line, &[rule.name]) {
                continue;
            }
            let chain = witness(graph, &parent, id);
            let root_name = chain
                .first()
                .map_or_else(|| node.display.clone(), |h| h.func.clone());
            for sink in live {
                let mut site_rules = vec![rule.name];
                if let Some(legacy) = (rule.legacy)(sink.kind) {
                    site_rules.push(legacy);
                }
                if allowed(&node.file, sink.line, &site_rules) {
                    continue;
                }
                let excerpt = by_rel
                    .get(node.file.as_str())
                    .and_then(|src| src.lines.get(sink.line))
                    .map_or(String::new(), |l| truncate(l.trim(), 160));
                let message = if rule.name == "panic-reach" {
                    format!(
                        "`{}` is reachable from hot-path root `{}` — the aggregation \
                         path must not panic on adversarial input; return an error \
                         or justify with a pragma",
                        sink.what, root_name
                    )
                } else {
                    format!(
                        "`{}` is reachable from hot-path root `{}` — nondeterminism \
                         must stay inside the sanctioned homes (`telemetry::clock`, \
                         `linalg::pool`, `runtime::fleet`)",
                        sink.what, root_name
                    )
                };
                out.push(Violation {
                    file: node.file.clone(),
                    line: sink.line + 1,
                    rule: rule.name,
                    message,
                    excerpt,
                    chain: chain.clone(),
                });
            }
        }
    }
    out
}

/// Reconstructs the witness chain `root → … → containing fn` for node
/// `id` from the BFS parent pointers, root first, with 1-based lines.
fn witness(graph: &CallGraph, parent: &[Option<(usize, usize)>], id: usize) -> Vec<Hop> {
    let mut rev = vec![id];
    let mut cur = id;
    while let Some((p, _)) = parent[cur] {
        rev.push(p);
        cur = p;
    }
    rev.reverse();
    rev.into_iter()
        .map(|n| Hop {
            func: graph.nodes[n].display.clone(),
            file: graph.nodes[n].file.clone(),
            line: graph.nodes[n].line + 1,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let parsed: Vec<ParsedSource> = files
            .iter()
            .map(|(rel, src)| parse_source(rel, src))
            .collect();
        let graph = CallGraph::build(&parsed);
        check(&graph, &parsed)
    }

    const FILTER: &str = "pub struct M;\nimpl GradientFilter for M {\n    fn aggregate_into(&self) {\n        helper();\n    }\n}\n";

    #[test]
    fn transitive_panic_is_reported_with_chain() {
        let v = run(&[
            ("crates/filters/src/mean.rs", FILTER),
            (
                "crates/core/src/util.rs",
                "pub fn helper() {\n    inner();\n}\nfn inner() {\n    Some(1).unwrap();\n}\n",
            ),
        ]);
        let panics: Vec<_> = v.iter().filter(|v| v.rule == "panic-reach").collect();
        assert_eq!(panics.len(), 1);
        let v = panics[0];
        assert_eq!(v.file, "crates/core/src/util.rs");
        assert_eq!(v.line, 5);
        let funcs: Vec<&str> = v.chain.iter().map(|h| h.func.as_str()).collect();
        assert_eq!(funcs, vec!["M::aggregate_into", "helper", "inner"]);
    }

    #[test]
    fn unreachable_panic_is_not_reported() {
        let v = run(&[
            ("crates/filters/src/mean.rs", FILTER),
            (
                "crates/core/src/util.rs",
                "pub fn helper() {}\npub fn cold() {\n    Some(1).unwrap();\n}\n",
            ),
        ]);
        assert!(v.iter().all(|v| v.rule != "panic-reach"));
    }

    #[test]
    fn sink_pragma_suppresses_including_legacy_rule_name() {
        let v = run(&[
            ("crates/filters/src/mean.rs", FILTER),
            (
                "crates/core/src/util.rs",
                "pub fn helper() {\n    // LINT-ALLOW(no-panic-hot-path): length checked by caller\n    Some(1).unwrap();\n}\n",
            ),
        ]);
        assert!(v.iter().all(|v| v.rule != "panic-reach"));
    }

    #[test]
    fn edge_pragma_cuts_the_call_edge() {
        let v = run(&[
            (
                "crates/filters/src/mean.rs",
                "pub struct M;\nimpl GradientFilter for M {\n    fn aggregate_into(&self) {\n        // LINT-ALLOW(panic-reach): helper is only given non-empty batches here\n        helper();\n    }\n}\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn helper() {\n    Some(1).unwrap();\n}\n",
            ),
        ]);
        assert!(v.iter().all(|v| v.rule != "panic-reach"));
    }

    #[test]
    fn determinism_sinks_in_sanctioned_homes_are_exempt() {
        let v = run(&[
            (
                "crates/runtime/src/fleet.rs",
                "pub struct Fleet;\nimpl Fleet {\n    fn dispatch_round(&mut self) {\n        std::thread::spawn(|| {});\n        tick();\n    }\n}\n",
            ),
            (
                "crates/telemetry/src/clock.rs",
                "pub fn tick() {\n    let _ = Instant::now();\n}\n",
            ),
        ]);
        assert!(v.iter().all(|v| v.rule != "determinism-taint"), "{v:#?}");
    }

    #[test]
    fn determinism_sink_outside_homes_is_reported() {
        let v = run(&[
            ("crates/filters/src/mean.rs", FILTER),
            (
                "crates/core/src/util.rs",
                "pub fn helper() {\n    let _ = Instant::now();\n}\n",
            ),
        ]);
        let taints: Vec<_> = v.iter().filter(|v| v.rule == "determinism-taint").collect();
        assert_eq!(taints.len(), 1);
        assert_eq!(taints[0].line, 2);
    }

    #[test]
    fn trait_dispatch_fans_out_to_unnamed_receivers() {
        // The root calls `.refine()` on an unknown receiver; every impl
        // of that method — whatever the trait — must be assumed callable.
        let v = run(&[
            (
                "crates/filters/src/mean.rs",
                "pub struct M;\nimpl GradientFilter for M {\n    fn aggregate_into(&self, s: &dyn Strategy) {\n        s.refine();\n    }\n}\n",
            ),
            (
                "crates/core/src/strat.rs",
                "pub struct S;\nimpl Strategy for S {\n    fn refine(&self) {\n        panic!(\"boom\");\n    }\n}\n",
            ),
        ]);
        assert!(v
            .iter()
            .any(|v| v.rule == "panic-reach" && v.chain.len() == 2));
    }
}
