//! The `abft-lint` binary: lint the workspace, print diagnostics, exit
//! non-zero on any unjustified violation.
//!
//! ```text
//! cargo run -p abft-lint              # human-readable diagnostics
//! cargo run -p abft-lint -- --json    # machine-readable JSON array
//! cargo run -p abft-lint -- PATH      # lint a different workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: abft-lint [ROOT] [--json]");
                println!("rules: {}", abft_lint::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("abft-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(abft_lint::default_root);

    let (violations, scanned) = match abft_lint::lint_workspace(&root) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("abft-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        let objects: Vec<String> = violations.iter().map(|v| v.to_json()).collect();
        println!("[{}]", objects.join(","));
    } else {
        for violation in &violations {
            println!("{violation}");
        }
        if violations.is_empty() {
            println!("abft-lint: workspace clean ({scanned} files scanned)");
        } else {
            println!(
                "abft-lint: {} violation(s) in {scanned} scanned files",
                violations.len()
            );
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
