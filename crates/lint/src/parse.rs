//! Stage 1 of the reachability analysis: a std-only item parser.
//!
//! Works on the same masked line stream the line rules use (comments,
//! string/char literals, and `#[cfg(test)]` regions already handled by
//! the lexer in the crate root — no `syn`, the container is
//! vendored-only). The masked code is tokenized into identifiers and
//! punctuation, then a single recursive pass extracts:
//!
//! - `fn` definitions, each tagged with its owner (`Free`, an
//!   `impl Type`/`impl Trait for Type` block, or a `trait` declaration),
//! - every call site inside a body (`free(…)`, `Qual::assoc(…)`,
//!   `.method(…)`), which stage 2 resolves into call-graph edges, and
//! - every *sink* inside a body: panicking constructs (`unwrap`/`expect`,
//!   `panic!`-family macros, slice indexing `x[i]`) and determinism
//!   hazards (`Instant::now`, thread spawning, `HashMap`/`HashSet`,
//!   entropy-seeded RNG).
//!
//! Functions inside `#[cfg(test)]` regions are dropped: they are neither
//! reachable from the hot-path roots nor legitimate resolution targets,
//! and keeping them out prevents a test helper from aliasing a production
//! function by name. `debug_assert!`-family macro arguments are skipped
//! entirely — they vanish from release builds, exactly like the line
//! rules' exemption.
//!
//! The parser is deliberately approximate where Rust's grammar is
//! irrelevant to call extraction (it tracks delimiters, not expressions),
//! but it is conservative in the direction that matters: an unresolvable
//! construct yields *more* candidate edges in stage 2, never fewer.

use crate::{mask, test_regions, MaskedLine};

/// Who owns a parsed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// A free function (module-level, including functions nested in
    /// other bodies).
    Free,
    /// A method in an `impl` block: `impl SelfTy { … }` or
    /// `impl TraitName for SelfTy { … }`.
    Impl {
        /// Base identifier of the implementing type (`Krum`, not
        /// `Krum<'a>`).
        self_ty: String,
        /// Base identifier of the implemented trait, when this is a
        /// trait impl.
        trait_name: Option<String>,
    },
    /// A method declared in a `trait` block (a default body, or a
    /// body-less signature that still anchors dispatch fan-out).
    Trait {
        /// The declaring trait's name.
        trait_name: String,
    },
}

/// What kind of hazard a [`Sink`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Can abort the process: `unwrap`/`expect`, `panic!`-family macros,
    /// slice indexing.
    Panic,
    /// Reads a wall clock: `Instant::now`, `SystemTime::now`.
    Clock,
    /// Spawns a thread: `thread::spawn`, `.spawn(`.
    Spawn,
    /// Iterates in hash order: `HashMap`/`HashSet`.
    HashOrder,
    /// Draws entropy: `from_entropy`, `thread_rng`, `OsRng`.
    Entropy,
}

/// One hazardous site inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    pub kind: SinkKind,
    /// The offending token, for diagnostics (`unwrap`, `slice-index`,
    /// `Instant::now`, …).
    pub what: String,
    /// 0-based line of the site.
    pub line: usize,
}

/// One call site inside a function body, before resolution.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (last path segment).
    pub callee: String,
    /// For `Qual::callee(…)`: the path segment directly before the final
    /// `::` (`Vector` in `abft_linalg::Vector::zeros`). `Self` is kept
    /// verbatim and resolved against the owner in stage 2.
    pub qualifier: Option<String>,
    /// Whether this was a `.callee(…)` method call.
    pub method: bool,
    /// 0-based line of the call.
    pub line: usize,
}

/// One parsed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub owner: Owner,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    pub calls: Vec<CallSite>,
    pub sinks: Vec<Sink>,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` otherwise.
    pub fn display(&self) -> String {
        match &self.owner {
            Owner::Free => self.name.clone(),
            Owner::Impl { self_ty, .. } => format!("{}::{}", self_ty, self.name),
            Owner::Trait { trait_name } => format!("{}::{}", trait_name, self.name),
        }
    }
}

/// Everything stage 2 needs from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    /// Trait declarations: name → the method names it declares (used to
    /// resolve `TraitName::method(…)` qualifiers).
    pub traits: Vec<(String, Vec<String>)>,
}

/// One source file, parsed: what [`lint_workspace`](crate::lint_workspace)
/// hands to the graph builder and the reach checker.
#[derive(Debug)]
pub struct ParsedSource {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Original source lines (for excerpts).
    pub lines: Vec<String>,
    /// Masked lines (for pragma lookups).
    pub(crate) masked: Vec<MaskedLine>,
    pub items: FileItems,
}

/// Masks, tokenizes, and item-parses one source file.
pub fn parse_source(rel: &str, source: &str) -> ParsedSource {
    let masked = mask(source);
    let in_test = test_regions(&masked);
    let toks = tokenize(&masked);
    let mut items = FileItems::default();
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        in_test: &in_test,
        items: &mut items,
    };
    p.parse_scope(&Owner::Free, None);
    ParsedSource {
        rel: rel.to_string(),
        lines: source.lines().map(str::to_string).collect(),
        masked,
        items,
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tok {
    /// An identifier, or a punctuation string (single char, or `::`).
    text: String,
    /// 0-based source line.
    line: usize,
}

impl Tok {
    fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// Splits the masked code stream into identifier and punctuation tokens.
/// `::` is one token; everything else is a single character.
fn tokenize(masked: &[MaskedLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (line, ml) in masked.iter().enumerate() {
        let bytes = ml.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if b.is_ascii_alphanumeric() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: ml.code[start..i].to_string(),
                    line,
                });
            } else if b == b':' && bytes.get(i + 1) == Some(&b':') {
                toks.push(Tok {
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            } else {
                toks.push(Tok {
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

// ---------------------------------------------------------------------------
// Item parser
// ---------------------------------------------------------------------------

/// Keywords that look like `ident(` call sites but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "move",
    "fn", "as", "where", "let", "mut", "ref", "pub", "use", "mod", "const", "static", "unsafe",
    "await", "dyn", "impl", "box",
];

/// Identifier tokens that may directly precede a `[` without the bracket
/// being an index expression (`for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "return", "if", "else", "match", "loop", "while", "break", "continue", "move", "mut",
    "ref", "as", "where", "let", "impl", "fn", "pub", "use", "mod", "const", "static", "type",
    "enum", "struct", "trait", "dyn", "unsafe", "await", "box", "await",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    in_test: &'a [bool],
    items: &'a mut FileItems,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn at(&self, offset: usize) -> Option<&Tok> {
        self.toks.get(self.pos + offset)
    }

    fn line_is_test(&self, line: usize) -> bool {
        self.in_test.get(line).copied().unwrap_or(false)
    }

    /// Skips one attribute (`#[…]` / `#![…]`) with balanced brackets.
    /// Positioned on the `#`.
    fn skip_attribute(&mut self) {
        self.bump(); // '#'
        if self.peek().is_some_and(|t| t.text == "!") {
            self.bump();
        }
        if self.peek().is_some_and(|t| t.text == "[") {
            self.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match self.bump() {
                    Some(t) if t.text == "[" => depth += 1,
                    Some(t) if t.text == "]" => depth -= 1,
                    Some(_) => {}
                    None => break,
                }
            }
        }
    }

    /// Skips a balanced `<…>` group. Positioned on the `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i64;
        loop {
            match self.bump() {
                Some(t) if t.text == "<" => depth += 1,
                Some(t) if t.text == ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return;
                    }
                }
                // A `(` inside generics (`Fn(..)` bounds) — skip the
                // group so its `>`-free arrows don't confuse the count.
                Some(t) if t.text == "(" => {
                    let mut p = 1usize;
                    while p > 0 {
                        match self.bump() {
                            Some(t) if t.text == "(" => p += 1,
                            Some(t) if t.text == ")" => p -= 1,
                            Some(_) => {}
                            None => return,
                        }
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    }

    /// Parses a type path after `impl`/`for`: `a::b::Name<…>` (with
    /// optional leading `&`/`'lifetime`/`dyn`/`mut`). Returns the base
    /// identifier of the last path segment.
    fn parse_type_path(&mut self) -> Option<String> {
        let mut last = None;
        loop {
            match self.peek() {
                Some(t) if t.text == "&" || t.text == "'" || t.text == "*" => {
                    self.bump();
                }
                Some(t) if t.is_ident() && (t.text == "dyn" || t.text == "mut") => {
                    self.bump();
                }
                _ => break,
            }
        }
        loop {
            match self.peek() {
                Some(t) if t.is_ident() => {
                    last = Some(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
            match self.peek() {
                Some(t) if t.text == "<" => {
                    self.skip_angles();
                }
                _ => {}
            }
            match self.peek() {
                Some(t) if t.text == "::" => {
                    self.bump();
                }
                _ => break,
            }
        }
        // Trailing generics on the last segment.
        if self.peek().is_some_and(|t| t.text == "<") {
            self.skip_angles();
        }
        last
    }

    /// Parses item streams: the top level, and the insides of
    /// `impl`/`trait`/`mod` blocks. Stops at the matching `}` (consumed)
    /// or end of input. `trait_ctx` carries a trait name when directly
    /// inside a `trait` block.
    fn parse_scope(&mut self, owner: &Owner, stop_depth: Option<()>) {
        while let Some(tok) = self.peek() {
            match tok.text.as_str() {
                "#" => self.skip_attribute(),
                "}" => {
                    self.bump();
                    if stop_depth.is_some() {
                        return;
                    }
                }
                "{" => {
                    // An anonymous brace at item level (a `mod m {`
                    // already consumed its header tokens as plain
                    // idents): recurse with the same owner so nested
                    // items are still found.
                    self.bump();
                    self.parse_scope(owner, Some(()));
                }
                "impl" => self.parse_impl(),
                "trait" => self.parse_trait(),
                "fn" if self.at(1).is_some_and(Tok::is_ident) => {
                    self.parse_fn(owner.clone());
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Parses `impl<…> Type {` / `impl<…> Trait for Type {` headers, then
    /// the block body as a scope owned by the impl.
    fn parse_impl(&mut self) {
        self.bump(); // `impl`
        if self.peek().is_some_and(|t| t.text == "<") {
            self.skip_angles();
        }
        let first = self.parse_type_path();
        let (self_ty, trait_name) = if self.peek().is_some_and(|t| t.text == "for") {
            self.bump();
            let ty = self.parse_type_path();
            (ty, first)
        } else {
            (first, None)
        };
        // Skip the where clause (no braces can appear before the block's).
        while let Some(t) = self.peek() {
            if t.text == "{" || t.text == ";" {
                break;
            }
            self.bump();
        }
        if self.peek().is_some_and(|t| t.text == "{") {
            self.bump();
            let owner = Owner::Impl {
                self_ty: self_ty.unwrap_or_else(|| "?".to_string()),
                trait_name,
            };
            self.parse_scope(&owner, Some(()));
        }
    }

    /// Parses `trait Name … { … }`, recording the declared method names.
    fn parse_trait(&mut self) {
        self.bump(); // `trait`
        let name = match self.peek() {
            Some(t) if t.is_ident() => t.text.clone(),
            _ => return,
        };
        self.bump();
        while let Some(t) = self.peek() {
            if t.text == "{" || t.text == ";" {
                break;
            }
            self.bump();
        }
        if self.peek().is_some_and(|t| t.text == "{") {
            self.bump();
            let owner = Owner::Trait {
                trait_name: name.clone(),
            };
            let before = self.items.fns.len();
            self.parse_scope(&owner, Some(()));
            let methods = self.items.fns[before..]
                .iter()
                .filter(|f| f.owner == owner)
                .map(|f| f.name.clone())
                .collect();
            self.items.traits.push((name, methods));
        }
    }

    /// Parses one `fn name …;` or `fn name … { body }`. Positioned on
    /// the `fn` keyword.
    fn parse_fn(&mut self, owner: Owner) {
        let def_line = self.peek().map_or(0, |t| t.line);
        self.bump(); // `fn`
        let name = match self.peek() {
            Some(t) if t.is_ident() => t.text.clone(),
            _ => return,
        };
        self.bump();
        // Signature: scan to the body `{` or the terminating `;`,
        // tracking (), [], and <> groups so an array type's `;` or a
        // closure's `|…|` never ends the signature early.
        loop {
            match self.peek() {
                Some(t) if t.text == "<" => self.skip_angles(),
                Some(t) if t.text == "(" || t.text == "[" => {
                    let open = t.text.clone();
                    let close = if open == "(" { ")" } else { "]" };
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.bump() {
                            Some(t) if t.text == open => depth += 1,
                            Some(t) if t.text == close => depth -= 1,
                            Some(_) => {}
                            None => return,
                        }
                    }
                }
                Some(t) if t.text == "{" => break,
                Some(t) if t.text == ";" => {
                    // A body-less declaration (trait method signature).
                    self.bump();
                    if !self.line_is_test(def_line) {
                        self.items.fns.push(FnItem {
                            name,
                            owner,
                            line: def_line,
                            calls: Vec::new(),
                            sinks: Vec::new(),
                        });
                    }
                    return;
                }
                Some(_) => {
                    self.bump();
                }
                None => return,
            }
        }
        self.bump(); // `{`
        let mut item = FnItem {
            name,
            owner,
            line: def_line,
            calls: Vec::new(),
            sinks: Vec::new(),
        };
        self.scan_body(&mut item);
        if !self.line_is_test(def_line) {
            self.items.fns.push(item);
        }
    }

    /// Scans a function body (positioned just past the opening `{`),
    /// collecting call sites and sinks until the matching `}`.
    fn scan_body(&mut self, item: &mut FnItem) {
        let mut depth = 1usize;
        while depth > 0 {
            let Some(tok) = self.peek() else { return };
            match tok.text.as_str() {
                "{" => {
                    depth += 1;
                    self.bump();
                }
                "}" => {
                    depth -= 1;
                    self.bump();
                }
                "#" => self.skip_attribute(),
                "fn" if self.at(1).is_some_and(Tok::is_ident) => {
                    // A nested function: its own item, its own sites.
                    self.parse_fn(Owner::Free);
                }
                "[" => {
                    // An index expression when the token before the `[`
                    // is a value-ish primary: an identifier (`xs[i]`,
                    // `self.data[i]`) or a closing delimiter
                    // (`row(i)[0]`, `a[0][1]`). Array literals/types sit
                    // after `=`/`(`/`:`/`,`/`&`/keywords and never match.
                    let prev = self.pos.checked_sub(1).and_then(|i| self.toks.get(i));
                    let indexable = prev.is_some_and(|p| {
                        (p.is_ident() && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                            || p.text == ")"
                            || p.text == "]"
                    });
                    if indexable {
                        item.sinks.push(Sink {
                            kind: SinkKind::Panic,
                            what: "slice-index".to_string(),
                            line: tok.line,
                        });
                    }
                    self.bump();
                }
                _ if tok.is_ident() => self.scan_ident(item),
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Handles one identifier inside a body: macro invocation, call
    /// site, sink token, or plain word.
    fn scan_ident(&mut self, item: &mut FnItem) {
        let tok = self.toks[self.pos].clone();
        let name = tok.text.as_str();
        let next = self.at(1).map(|t| t.text.clone()).unwrap_or_default();
        let prev = self
            .pos
            .checked_sub(1)
            .and_then(|i| self.toks.get(i))
            .map(|t| t.text.clone())
            .unwrap_or_default();

        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if next == "!" && self.at(2).is_some_and(|t| "([{".contains(t.text.as_str())) {
            if name.starts_with("debug_assert") {
                // Exempt, and its arguments vanish from release builds:
                // skip the whole group.
                self.bump(); // name
                self.bump(); // !
                self.skip_group();
                return;
            }
            if PANIC_MACROS.contains(&name) {
                item.sinks.push(Sink {
                    kind: SinkKind::Panic,
                    what: format!("{name}!"),
                    line: tok.line,
                });
            }
            // Scan the macro arguments as ordinary tokens (calls inside
            // `format!`/`write!`/… still create edges).
            self.bump();
            self.bump();
            return;
        }

        // Determinism sinks that are bare type/function names.
        match name {
            "HashMap" | "HashSet" => {
                item.sinks.push(Sink {
                    kind: SinkKind::HashOrder,
                    what: name.to_string(),
                    line: tok.line,
                });
            }
            "from_entropy" | "thread_rng" | "OsRng" => {
                item.sinks.push(Sink {
                    kind: SinkKind::Entropy,
                    what: name.to_string(),
                    line: tok.line,
                });
            }
            _ => {}
        }

        // Call site: `name(`.
        if next == "(" && !NON_CALL_KEYWORDS.contains(&name) {
            let (qualifier, method) = if prev == "." {
                (None, true)
            } else if prev == "::" {
                (self.qualifier_before(self.pos - 1), false)
            } else {
                (None, false)
            };
            match (name, qualifier.as_deref(), method) {
                // Panic sinks, not edges: nothing in the workspace
                // defines these.
                ("unwrap" | "expect", _, true) => item.sinks.push(Sink {
                    kind: SinkKind::Panic,
                    what: name.to_string(),
                    line: tok.line,
                }),
                ("now", Some("Instant" | "SystemTime"), _) => item.sinks.push(Sink {
                    kind: SinkKind::Clock,
                    what: format!("{}::now", qualifier.as_deref().unwrap_or("?")),
                    line: tok.line,
                }),
                ("spawn", Some("thread"), _) => item.sinks.push(Sink {
                    kind: SinkKind::Spawn,
                    what: "thread::spawn".to_string(),
                    line: tok.line,
                }),
                _ => {
                    if name == "spawn" && method {
                        // `builder.spawn(…)` — still a thread spawn.
                        item.sinks.push(Sink {
                            kind: SinkKind::Spawn,
                            what: ".spawn".to_string(),
                            line: tok.line,
                        });
                    }
                    item.calls.push(CallSite {
                        callee: name.to_string(),
                        qualifier,
                        method,
                        line: tok.line,
                    });
                }
            }
        }

        self.bump();
    }

    /// Skips one balanced `(…)`/`[…]`/`{…}` group. Positioned on the
    /// opening delimiter.
    fn skip_group(&mut self) {
        let Some(open) = self.peek().map(|t| t.text.clone()) else {
            return;
        };
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return,
        };
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some(t) if t.text == open => depth += 1,
                Some(t) if t.text == close => depth -= 1,
                Some(_) => {}
                None => return,
            }
        }
    }

    /// The path segment directly before the `::` at `sep` — skipping a
    /// turbofish `::<…>` if present: `Vec::<f64>::new` → `Vec`.
    fn qualifier_before(&self, sep: usize) -> Option<String> {
        let mut i = sep.checked_sub(1)?;
        if self.toks.get(i)?.text == ">" {
            // Walk back over the balanced angle group.
            let mut depth = 1i64;
            while depth > 0 {
                i = i.checked_sub(1)?;
                match self.toks.get(i)?.text.as_str() {
                    ">" => depth += 1,
                    "<" => depth -= 1,
                    _ => {}
                }
            }
            i = i.checked_sub(1)?;
            if self.toks.get(i)?.text == "::" {
                i = i.checked_sub(1)?;
            }
        }
        let t = self.toks.get(i)?;
        t.is_ident().then(|| t.text.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_source("crates/x/src/lib.rs", src).items
    }

    #[test]
    fn extracts_free_fns_and_calls() {
        let items = parse("fn a() {\n    b();\n    helper::c();\n}\nfn b() {}\n");
        assert_eq!(items.fns.len(), 2);
        let a = &items.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.owner, Owner::Free);
        assert_eq!(a.calls.len(), 2);
        assert_eq!(a.calls[0].callee, "b");
        assert_eq!(a.calls[1].callee, "c");
        assert_eq!(a.calls[1].qualifier.as_deref(), Some("helper"));
    }

    #[test]
    fn extracts_impl_methods_with_trait_context() {
        let src = "struct K;\nimpl Filter for K {\n    fn aggregate_into(&self) {\n        self.helper();\n    }\n}\nimpl K {\n    fn helper(&self) {}\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(
            items.fns[0].owner,
            Owner::Impl {
                self_ty: "K".into(),
                trait_name: Some("Filter".into())
            }
        );
        assert!(items.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == "helper" && c.method));
        assert_eq!(
            items.fns[1].owner,
            Owner::Impl {
                self_ty: "K".into(),
                trait_name: None
            }
        );
    }

    #[test]
    fn trait_decl_records_method_names_and_default_bodies() {
        let src = "trait Filter {\n    fn aggregate_into(&self);\n    fn aggregate(&self) {\n        self.aggregate_into();\n    }\n}\n";
        let items = parse(src);
        assert_eq!(items.traits.len(), 1);
        assert_eq!(items.traits[0].0, "Filter");
        assert_eq!(items.traits[0].1, vec!["aggregate_into", "aggregate"]);
        // The default body is a node with an edge.
        let default = items.fns.iter().find(|f| f.name == "aggregate").unwrap();
        assert!(default.calls.iter().any(|c| c.callee == "aggregate_into"));
    }

    #[test]
    fn generic_impl_headers_resolve_base_names() {
        let src = "impl<P: Clone + Send> Bus<P> for SimNet<P> {\n    fn send(&mut self) {}\n}\n";
        let items = parse(src);
        assert_eq!(
            items.fns[0].owner,
            Owner::Impl {
                self_ty: "SimNet".into(),
                trait_name: Some("Bus".into())
            }
        );
    }

    #[test]
    fn panic_sinks_unwrap_expect_macros_and_indexing() {
        let src = "fn f(x: Option<u32>, xs: &[f64], i: usize) {\n    x.unwrap();\n    x.expect(\"boom\");\n    panic!(\"no\");\n    let _ = xs[i];\n}\n";
        let items = parse(src);
        let kinds: Vec<&str> = items.fns[0].sinks.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(kinds, vec!["unwrap", "expect", "panic!", "slice-index"]);
        assert!(items.fns[0].sinks.iter().all(|s| s.kind == SinkKind::Panic));
    }

    #[test]
    fn debug_assert_arguments_are_exempt() {
        let src = "fn f(xs: &[f64], i: usize) {\n    debug_assert!(xs[i] > 0.0);\n    debug_assert_eq!(xs[i], 1.0);\n}\n";
        let items = parse(src);
        assert!(items.fns[0].sinks.is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_panic_sinks() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n}\n";
        let items = parse(src);
        assert!(items.fns[0].sinks.is_empty());
    }

    #[test]
    fn array_types_and_literals_are_not_index_sinks() {
        let src = "fn f() -> [f64; 2] {\n    let a: [f64; 2] = [0.0, 1.0];\n    for _x in [1, 2] {}\n    a\n}\n";
        let items = parse(src);
        assert!(items.fns[0].sinks.is_empty(), "{:?}", items.fns[0].sinks);
    }

    #[test]
    fn determinism_sinks_are_recorded() {
        let src = "fn f() {\n    let _t = Instant::now();\n    std::thread::spawn(|| {});\n    let _m: HashMap<u32, u32> = HashMap::new();\n    let _r = rng.from_entropy();\n}\n";
        let items = parse(src);
        let kinds: Vec<SinkKind> = items.fns[0].sinks.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SinkKind::Clock));
        assert!(kinds.contains(&SinkKind::Spawn));
        assert!(kinds.contains(&SinkKind::HashOrder));
        assert!(kinds.contains(&SinkKind::Entropy));
    }

    #[test]
    fn cfg_test_functions_are_dropped() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { Some(1).unwrap(); }\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "live");
    }

    #[test]
    fn method_chains_and_turbofish_resolve() {
        let src = "fn f(v: &V) {\n    v.rows().iter().step();\n    Vec::<f64>::with_capacity(4);\n    Self::go();\n}\n";
        let items = parse(src);
        let calls = &items.fns[0].calls;
        assert!(calls.iter().any(|c| c.callee == "rows" && c.method));
        assert!(calls
            .iter()
            .any(|c| c.callee == "with_capacity" && c.qualifier.as_deref() == Some("Vec")));
        assert!(calls
            .iter()
            .any(|c| c.callee == "go" && c.qualifier.as_deref() == Some("Self")));
    }

    #[test]
    fn fn_pointer_types_are_not_nested_fns() {
        let src = "fn f(cb: fn(usize) -> usize) -> usize {\n    cb(3)\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert!(items.fns[0].calls.iter().any(|c| c.callee == "cb"));
    }

    #[test]
    fn array_type_semicolon_does_not_end_signature() {
        let src = "fn f(x: [f64; 3]) -> f64 {\n    x.iter().sum()\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert!(items.fns[0].calls.iter().any(|c| c.callee == "sum"));
    }
}
