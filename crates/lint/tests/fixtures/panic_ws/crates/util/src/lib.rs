//! Fixture utility crate: not a hot-path crate for the line-level rules,
//! so the seeded panic below is only reportable through reachability.

pub fn checked_push(out: &mut Vec<f64>, v: f64) {
    record(v);
    out.push(v);
}

fn record(v: f64) {
    verify(v);
}

fn verify(v: f64) {
    if !v.is_finite() {
        panic!("seeded transitive panic");
    }
}
