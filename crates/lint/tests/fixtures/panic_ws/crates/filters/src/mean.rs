//! Fixture filter whose hot path leaks into another crate: the panic it
//! can reach lives three calls away, in `crates/util`.

pub struct Mean;

impl GradientFilter for Mean {
    fn aggregate_into(&self, out: &mut Vec<f64>) {
        checked_push(out, 1.0);
    }
}
