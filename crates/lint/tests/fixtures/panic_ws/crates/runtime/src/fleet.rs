//! Fixture dispatch root: calls every registered filter through the
//! `GradientFilter` trait, so the analyzer must fan the dynamic call out
//! to each implementation in the (fixture) workspace.

pub trait GradientFilter {
    fn aggregate_into(&self, out: &mut Vec<f64>);
}

pub fn dispatch_round(filters: &mut [Box<dyn GradientFilter>], out: &mut Vec<f64>) {
    for filter in filters.iter() {
        filter.aggregate_into(out);
    }
}
