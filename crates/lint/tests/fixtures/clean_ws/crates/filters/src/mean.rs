//! A panic-free filter implementation: a hot-path root with no reachable
//! sink anywhere, pinning that roots alone never produce diagnostics.

pub struct Mean;

impl GradientFilter for Mean {
    fn aggregate_into(&self, out: &mut Vec<f64>) {
        for slot in out.iter_mut() {
            *slot = 0.0;
        }
    }
}
