//! The sanctioned clock home: wall-clock reads are allowed here and only
//! here, so reachability must treat this file as a taint sink's safe
//! terminus.

pub fn now_ms() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis() as u64
}
