//! Fixture dispatch root whose only determinism-relevant sink sits inside
//! a sanctioned home: the taint walk must terminate there and report
//! nothing.

pub fn dispatch_round(out: &mut Vec<f64>) {
    let t = now_ms();
    out.push(t as f64);
}
