//! The workspace itself must satisfy its own invariants: running the
//! linter over the real tree inside tier-1 makes `cargo test` fail the
//! moment a `partial_cmp`, an unjustified panic, an undocumented `unsafe`,
//! a hashed collection, or a stray spawn/clock lands on a guarded path —
//! or, since the reachability stage, the moment a panic or
//! nondeterminism sink becomes *transitively* reachable from a hot-path
//! root through any chain of calls, in any crate.

use abft_lint::{default_root, lint_workspace};

#[test]
fn the_workspace_has_no_lint_violations() {
    let root = default_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let (violations, scanned) = lint_workspace(&root).expect("workspace sources are readable");
    assert!(
        scanned > 100,
        "suspiciously few files scanned ({scanned}) — did the tree move?"
    );
    assert!(
        violations.is_empty(),
        "abft-lint found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
