//! End-to-end reachability tests: run the real `abft-lint` binary over
//! the fixture workspaces in `tests/fixtures/` and pin exit codes, the
//! witness-chain rendering, and the JSON schema.
//!
//! The fixtures live under a directory named `fixtures`, which the
//! workspace scan skips — they are only ever linted by pointing the
//! binary at them explicitly, as these tests do.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the binary over `root`, returning `(exit_code, stdout)`.
fn lint(root: &str, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_abft-lint"));
    cmd.arg(fixture(root));
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("abft-lint runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf-8 output"),
    )
}

#[test]
fn seeded_transitive_panic_exits_one_with_a_full_witness_chain() {
    let (code, stdout) = lint("panic_ws", false);
    assert_eq!(code, 1, "a reachable panic must fail the lint:\n{stdout}");
    // The diagnostic lands on the sink, not on the root …
    assert!(stdout.contains("crates/util/src/lib.rs"), "{stdout}");
    assert!(stdout.contains("panic-reach"), "{stdout}");
    assert!(stdout.contains("seeded transitive panic"), "{stdout}");
    // … and the chain walks root → … → sink across every hop.
    let chain = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("chain:"))
        .expect("witness chain line");
    for hop in ["aggregate_into", "checked_push", "record", "verify"] {
        assert!(chain.contains(hop), "chain must include {hop}: {chain}");
    }
    // No line-level rule fires in the fixture: the panic is only visible
    // transitively, so reachability is what caught it.
    assert!(!stdout.contains("no-panic-hot-path"), "{stdout}");
}

#[test]
fn trait_dispatch_carries_the_chain_across_crates() {
    let (_, stdout) = lint("panic_ws", false);
    let chain = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("chain:"))
        .expect("witness chain line");
    // The root sits in the filters crate (reached through `GradientFilter`
    // dynamic dispatch from the fixture fleet) and the sink in the util
    // crate: a cross-crate edge the line-level rules can never see.
    let filters = chain.find("crates/filters/src/mean.rs").expect("root hop");
    let util = chain.find("crates/util/src/lib.rs").expect("sink hop");
    assert!(filters < util, "chain must run root → sink: {chain}");
}

#[test]
fn sanctioned_clock_home_terminates_the_taint_walk() {
    let (code, stdout) = lint("clean_ws", false);
    assert_eq!(
        code, 0,
        "a wall-clock read inside crates/telemetry/src/clock.rs is the \
         sanctioned exception and must not be reported:\n{stdout}"
    );
    assert!(stdout.contains("workspace clean"), "{stdout}");
}

#[test]
fn json_report_carries_the_chain_with_stable_keys() {
    let (code, stdout) = lint("panic_ws", true);
    assert_eq!(code, 1);
    let json = stdout.trim();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    for key in [
        "\"rule\":\"panic-reach\"",
        "\"file\":\"crates/util/src/lib.rs\"",
        "\"chain\":[",
        "\"func\":\"Mean::aggregate_into\"",
        "\"func\":\"verify\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
