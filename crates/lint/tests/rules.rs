//! Fixture tests: one positive (flagged) and one negative (clean) case per
//! rule, plus the pragma mechanism — honored with a reason, rejected
//! without one, and rejected for unknown rule names.
//!
//! Fixtures are inline string literals run through [`abft_lint::lint_source`]
//! under paths chosen to land in each rule's scope; none of them ever
//! touch the real workspace tree.

use abft_lint::{lint_source, Violation};

/// The rules triggered by `src` when linted under `rel`, in order.
fn rules(rel: &str, src: &str) -> Vec<&'static str> {
    lint_source(rel, src).iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------- float

#[test]
fn float_total_order_flags_partial_cmp() {
    let src = "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let found = lint_source("crates/ml/src/fixture.rs", src);
    assert!(found.iter().any(|v| v.rule == "float-total-order"));
    let hit = found
        .iter()
        .find(|v| v.rule == "float-total-order")
        .expect("checked above");
    assert_eq!(hit.line, 2);
    assert!(hit.excerpt.contains("partial_cmp"));
}

#[test]
fn float_total_order_applies_in_tests_and_benches_too() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = 1.0f64.partial_cmp(&2.0);\n    }\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", src).contains(&"float-total-order"));
    let bench = "fn main() {\n    let _ = 1.0f64.partial_cmp(&2.0);\n}\n";
    assert!(rules("crates/bench/benches/fixture.rs", bench).contains(&"float-total-order"));
}

#[test]
fn float_total_order_accepts_total_cmp() {
    let src = "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
}

#[test]
fn float_total_order_ignores_comments_and_strings() {
    let src = "fn f() {\n    // partial_cmp would be wrong here\n    let s = \"partial_cmp\";\n    let _ = s;\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
}

// ------------------------------------------------------------- no-panic

#[test]
fn no_panic_flags_unwrap_in_hot_path_crates() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    for krate in ["filters", "linalg", "runtime", "dgd"] {
        let rel = format!("crates/{krate}/src/fixture.rs");
        assert_eq!(
            rules(&rel, src),
            vec!["no-panic-hot-path"],
            "{krate} is a no-panic crate"
        );
    }
}

#[test]
fn no_panic_flags_every_panicking_macro() {
    for stmt in [
        "x.unwrap();",
        "x.expect(\"reason\");",
        "panic!(\"boom\");",
        "unreachable!();",
        "todo!();",
        "unimplemented!();",
        "assert!(cond);",
        "assert_eq!(a, b);",
        "assert_ne!(a, b);",
    ] {
        let src = format!("pub fn f() {{\n    {stmt}\n}}\n");
        assert!(
            rules("crates/filters/src/fixture.rs", &src).contains(&"no-panic-hot-path"),
            "{stmt} must be flagged"
        );
    }
}

#[test]
fn no_panic_exempts_debug_assert() {
    let src = "pub fn f(i: usize, n: usize) {\n    debug_assert!(i < n);\n    debug_assert_eq!(n % 2, 0);\n}\n";
    assert!(rules("crates/filters/src/fixture.rs", src).is_empty());
}

#[test]
fn no_panic_exempts_tests_and_other_crates() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    // Same code in a non-hot-path crate: clean.
    assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    // In a hot-path crate's tests/ target: clean.
    assert!(rules("crates/filters/tests/fixture.rs", src).is_empty());
    // In a #[cfg(test)] region of hot-path src: clean.
    let in_tests =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    assert!(rules("crates/filters/src/fixture.rs", in_tests).is_empty());
}

#[test]
fn no_panic_ignores_doc_comment_mentions() {
    let src = "/// # Panics\n///\n/// Never panics: `unwrap()` is not reachable.\npub fn f() {}\n";
    assert!(rules("crates/linalg/src/fixture.rs", src).is_empty());
}

// --------------------------------------------------------------- unsafe

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(
        rules("crates/ml/src/fixture.rs", src),
        vec!["unsafe-needs-safety"]
    );
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    let above = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees `p` is valid.\n    unsafe { *p }\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", above).is_empty());
    let same_line = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller guarantees `p` is valid.\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", same_line).is_empty());
}

#[test]
fn unsafe_fn_accepts_safety_doc_section() {
    let src = "/// Reads a byte.\n///\n/// # Safety\n///\n/// `p` must be valid for reads.\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: valid per this function's contract.\n    unsafe { *p }\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
}

#[test]
fn unsafe_safety_comment_survives_attributes_and_continuations() {
    // The annotation walk skips attributes and multi-line statement
    // continuations between the comment and the `unsafe` token.
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees `p` is valid.\n    #[allow(clippy::let_and_return)]\n    let v =\n        unsafe { *p };\n    v\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
}

#[test]
fn unsafe_applies_in_tests_too() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = 0u8;\n        let _ = unsafe { *(&x as *const u8) };\n    }\n}\n";
    assert_eq!(
        rules("crates/ml/src/fixture.rs", src),
        vec!["unsafe-needs-safety"]
    );
}

// ---------------------------------------------------------- collections

#[test]
fn hashed_collections_are_flagged_in_src() {
    let src = "use std::collections::HashMap;\npub fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    let _ = m;\n}\n";
    let found = rules("crates/ml/src/fixture.rs", src);
    assert!(found.iter().all(|&r| r == "deterministic-collections"));
    assert!(!found.is_empty());
    let set = "use std::collections::HashSet;\n";
    assert_eq!(
        rules("crates/ml/src/fixture.rs", set),
        vec!["deterministic-collections"]
    );
}

#[test]
fn btree_collections_are_clean() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\npub fn f(m: &BTreeMap<u32, u32>, s: &BTreeSet<u32>) -> usize {\n    m.len() + s.len()\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
}

// ------------------------------------------------------- fixed-schedule

#[test]
fn thread_spawn_is_flagged_outside_the_pools() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert_eq!(
        rules("crates/ml/src/fixture.rs", src),
        vec!["fixed-schedule"]
    );
}

#[test]
fn thread_spawn_is_sanctioned_in_the_pool_homes() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert!(rules("crates/linalg/src/pool.rs", src).is_empty());
    assert!(rules("crates/runtime/src/fleet.rs", src).is_empty());
}

#[test]
fn instant_now_is_flagged_outside_bench() {
    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(
        rules("crates/scenario/src/fixture.rs", src),
        vec!["fixed-schedule"]
    );
    // The bench crate is timing's sanctioned home.
    assert!(rules("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn instant_now_is_sanctioned_in_the_telemetry_clock_home() {
    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    // The telemetry crate's clock module is the third sanctioned home …
    assert!(rules("crates/telemetry/src/clock.rs", src).is_empty());
    // … but only that file: the rest of the telemetry crate stays banned.
    assert_eq!(
        rules("crates/telemetry/src/lib.rs", src),
        vec!["fixed-schedule"]
    );
}

#[test]
fn the_async_driver_is_not_a_timing_or_panic_home() {
    // The asynchronous server schedules agents on *virtual* clocks; a
    // wall-clock read there would silently break seeded reproducibility,
    // so the driver home gets no sanction.
    let timed = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(
        rules("crates/runtime/src/async_server.rs", timed),
        vec!["fixed-schedule"]
    );
    // And it sits on the aggregation hot path, so the no-panic rule
    // applies exactly as it does to the synchronous drivers.
    let panicking = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(
        rules("crates/runtime/src/async_server.rs", panicking),
        vec!["no-panic-hot-path"]
    );
}

// --------------------------------------------------------------- pragma

#[test]
fn pragma_with_reason_suppresses_the_violation() {
    let above = "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic-hot-path): fixture justification\n    x.unwrap()\n}\n";
    assert!(rules("crates/filters/src/fixture.rs", above).is_empty());
    let same_line = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // LINT-ALLOW(no-panic-hot-path): fixture justification\n}\n";
    assert!(rules("crates/filters/src/fixture.rs", same_line).is_empty());
}

#[test]
fn pragma_only_covers_its_own_rule() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(float-total-order): wrong rule for this site\n    x.unwrap()\n}\n";
    assert_eq!(
        rules("crates/filters/src/fixture.rs", src),
        vec!["no-panic-hot-path"]
    );
}

#[test]
fn pragma_without_reason_is_itself_a_violation() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic-hot-path)\n    x.unwrap()\n}\n";
    let found = rules("crates/filters/src/fixture.rs", src);
    // The bare pragma does not suppress, and is flagged on top.
    assert!(found.contains(&"pragma"));
    assert!(found.contains(&"no-panic-hot-path"));
    // A colon followed by nothing is still no reason.
    let empty = "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic-hot-path):\n    x.unwrap()\n}\n";
    assert!(rules("crates/filters/src/fixture.rs", empty).contains(&"pragma"));
}

#[test]
fn pragma_naming_unknown_rule_is_flagged() {
    let src = "// LINT-ALLOW(no-such-rule): reason text\npub fn f() {}\n";
    let found = lint_source("crates/ml/src/fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, "pragma");
    assert!(found[0].message.contains("no-such-rule"));
}

#[test]
fn pragma_covers_every_line_of_a_multi_line_statement() {
    // The pragma sits above the first line of a statement whose violating
    // token only appears on a continuation line; the whole statement is
    // covered, not just its first line.
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic-hot-path): fixture justification\n    let y = x\n        .map(|v| v + 1)\n        .unwrap();\n    y\n}\n";
    assert!(rules("crates/filters/src/fixture.rs", src).is_empty());
    // Same for a sort chain split across lines.
    let sort = "pub fn f(xs: &mut [f64]) {\n    // LINT-ALLOW(float-total-order): fixture justification\n    xs.sort_by(|a, b| a\n        .partial_cmp(b)\n        .unwrap());\n}\n";
    assert!(rules("crates/ml/src/fixture.rs", sort).is_empty());
}

#[test]
fn pragma_stops_where_the_multi_line_statement_ends() {
    // Coverage extends to the statement's closing `;` and no further: the
    // violation in the *next* statement stays flagged.
    let src = "pub fn f(x: Option<u32>, z: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic-hot-path): fixture justification\n    let y = x\n        .map(|v| v + 1)\n        .unwrap();\n    y + z.unwrap()\n}\n";
    let found = lint_source("crates/filters/src/fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, "no-panic-hot-path");
    assert_eq!(found[0].line, 6, "only the follow-up statement is flagged");
}

#[test]
fn pragma_does_not_leak_past_an_intervening_statement() {
    // The pragma sits above a *complete* statement; the violation on the
    // line after it must stay flagged.
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic-hot-path): covers only the next statement\n    let y = x;\n    y.unwrap()\n}\n";
    assert_eq!(
        rules("crates/filters/src/fixture.rs", src),
        vec!["no-panic-hot-path"]
    );
}

// ------------------------------------------------------------ reporting

#[test]
fn violations_carry_location_excerpt_and_json() {
    let src = "fn f(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b).is_some()\n}\n";
    let found = lint_source("crates/ml/src/fixture.rs", src);
    assert_eq!(found.len(), 1);
    let v: &Violation = &found[0];
    assert_eq!((v.file.as_str(), v.line), ("crates/ml/src/fixture.rs", 2));
    let text = v.to_string();
    assert!(text.contains("crates/ml/src/fixture.rs:2"));
    assert!(text.contains("float-total-order"));
    let json = v.to_json();
    assert!(json.contains("\"file\":\"crates/ml/src/fixture.rs\""));
    assert!(json.contains("\"line\":2"));
    assert!(json.contains("\"rule\":\"float-total-order\""));
}
