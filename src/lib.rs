//! # approx-bft
//!
//! A complete Rust reproduction of *Approximate Byzantine Fault-Tolerance
//! in Distributed Optimization* (Liu, Gupta, Vaidya — PODC 2021,
//! arXiv:2101.09337).
//!
//! `n` agents each hold a local cost `Q_i : ℝᵈ → ℝ`; up to `f` of them are
//! Byzantine. The paper defines `(f, ε)`-resilience — outputting a point
//! within `ε` of the minimizer of *every* `(n−f)`-honest-subset aggregate —
//! and proves it is achievable exactly when the costs satisfy
//! `(2f, ε)`-redundancy (necessity: Theorem 1; sufficiency with `2ε`:
//! Theorem 2). For differentiable costs it analyzes distributed gradient
//! descent with robust gradient aggregation (CGE and CWTM filters,
//! Theorems 3–6).
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`core`] | agent ids, `(n, f)` configuration, traces, subsets, and [`core::observe`] — the streaming `RunObserver` sink API (lazy per-round views, trace recorders, convergence-triggered halting, constant-memory CSV streaming) every driver reports through |
//! | [`linalg`] | vectors, matrices, solvers, eigenvalues (from scratch), [`linalg::GradientBatch`] — the contiguous `n × d` arena the whole aggregation path runs on — and [`linalg::WorkerPool`], the deterministic pool that shards aggregation bit-identically across threads |
//! | [`problems`] | cost functions with in-place `gradient_into`, the paper's regression dataset, µ/γ analysis |
//! | [`filters`] | CGE, CWTM + nine baseline robust aggregators, each implementing the zero-copy `aggregate_into` batch path (the `&[Vector]` signature remains as a thin adapter) |
//! | [`attacks`] | gradient-reverse, random (σ=200), ALIE, … — forging directly into batch rows via `corrupt_into` |
//! | [`redundancy`] | ε measurement, Theorem-2 exact algorithm, bounds, necessity witness |
//! | [`dgd`] | the Section-4 DGD loop with projection and schedules; one batch + scratch reused across all `T` iterations (zero per-iteration gradient allocations) |
//! | [`net`] | deterministic discrete-event network simulator: the `MessageBus` abstraction, seeded per-link delay/drop/reorder models, scheduled partitions, network-level Byzantine faults |
//! | [`runtime`] | event-loop server runtime (agent state machines on a persistent [`runtime::Fleet`] worker pool) + EIG Byzantine broadcast over the shared `MessageBus`, aggregating off the wire into reused batches; `DgdTask::run_simulated` runs either architecture on faulty links |
//! | [`ml`] | MLP/SVM substrate + synthetic datasets + robust D-SGD on the same batch path |
//! | [`scenario`] | **the public entry point**: declarative [`scenario::Scenario`] specs that run unmodified on the in-process, threaded, peer-to-peer, and simulated-network backends — with per-scenario [`scenario::Recording`] / [`scenario::HaltRule`] observation plans — plus [`scenario::ScenarioSuite`] grids fanned across worker threads |
//! | [`telemetry`] | low-overhead phase spans, counters, and log₂ latency histograms behind a [`telemetry::Telemetry`] handle that no-ops when disabled (`ABFT_TELEMETRY=on` to enable); every backend reports a [`telemetry::TelemetryReport`] with JSON and Chrome-trace exporters, in deterministic virtual time on the simulated backends |
//!
//! The gradient data path — who produces into and who consumes out of a
//! `GradientBatch` — is documented in `ROADMAP.md` §“Architecture: the
//! gradient data path”, together with how the `filters_batch` and
//! `filters_parallel` benches are run.
//!
//! Aggregation is serial by default; set
//! [`dgd::RunOptions::aggregation_threads`] (or
//! `ABFT_AGGREGATION_THREADS` in the environment, which flips the
//! default) to shard each round's filter across a worker pool. The
//! pool's fixed tile schedule makes parallel output **bit-identical** to
//! serial, so every trace, equivalence guarantee, and test holds
//! unchanged at any thread count — the knob is pure wall-clock for large
//! `d`.
//!
//! Observation is a sink, not a return value: runs report through
//! [`core::observe::RunObserver`]s (dense or subsampled trace recording,
//! convergence-triggered early stop, constant-memory CSV streaming, or
//! nothing at all), every report carries an always-present
//! [`core::observe::RunSummary`], and
//! `Scenario::builder().record(..).halt(..)` selects the plan
//! declaratively. Recording modes never perturb the trajectory, and halt
//! rules fire at the identical round on every backend — see `ROADMAP.md`
//! §“The observation layer”.
//!
//! # Quickstart
//!
//! One declarative [`scenario::Scenario`] describes the whole experiment —
//! problem, faults, attack, filter, run options — and runs unmodified on
//! any backend:
//!
//! ```
//! use approx_bft::dgd::RunOptions;
//! use approx_bft::problems::RegressionProblem;
//! use approx_bft::scenario::{Backend, InProcess, Scenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Appendix-J instance: n = 6 agents, f = 1 Byzantine.
//! let problem = RegressionProblem::paper_instance();
//! let x_h = problem.subset_minimizer(&[1, 2, 3, 4, 5])?;
//!
//! // Agent 0 reverses its gradients; the server filters with CGE.
//! let scenario = Scenario::builder()
//!     .problem(&problem)
//!     .faults(1)
//!     .attack(0, "gradient-reverse")
//!     .filter("cge")
//!     .options(RunOptions::paper_defaults(x_h.clone()))
//!     .build()?;
//! let report = InProcess.run(&scenario)?; // or Threaded / PeerToPeer
//!
//! // Table 1: the output lands within the measured redundancy ε = 0.0890.
//! assert!(report.final_estimate.dist(&x_h) < 0.0890);
//! # Ok(())
//! # }
//! ```

pub use abft_attacks as attacks;
pub use abft_core as core;
pub use abft_dgd as dgd;
pub use abft_filters as filters;
pub use abft_linalg as linalg;
pub use abft_ml as ml;
pub use abft_net as net;
pub use abft_problems as problems;
pub use abft_redundancy as redundancy;
pub use abft_runtime as runtime;
pub use abft_scenario as scenario;
pub use abft_telemetry as telemetry;

/// One-stop prelude for downstream users.
pub mod prelude {
    pub use abft_attacks::{
        attack_by_name, AttackContext, ByzantineStrategy, GradientReverse, RandomGaussian,
    };
    pub use abft_core::prelude::*;
    pub use abft_dgd::prelude::*;
    pub use abft_filters::{all_filters, by_name, Cge, Cwtm, GradientFilter, Mean};
    pub use abft_linalg::prelude::*;
    pub use abft_ml::prelude::*;
    pub use abft_net::prelude::*;
    pub use abft_problems::prelude::*;
    pub use abft_redundancy::prelude::*;
    pub use abft_runtime::prelude::*;
    pub use abft_scenario::prelude::*;
    pub use abft_telemetry::{Telemetry, TelemetryConfig, TelemetryReport};
}
