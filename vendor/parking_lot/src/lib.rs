//! Offline, API-compatible subset of `parking_lot`.
//!
//! Only [`Mutex`] with a panic-on-poison `lock()` is needed by this
//! workspace; it wraps `std::sync::Mutex` (poisoning is treated as a bug,
//! matching `parking_lot`'s no-poisoning semantics closely enough).

use std::sync::MutexGuard;

/// A mutex whose `lock` returns the guard directly, like `parking_lot`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (std poisoning), which
    /// `parking_lot` proper cannot experience; workspace code treats that
    /// as an unrecoverable bug either way.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
