//! Offline, API-compatible subset of `proptest`.
//!
//! This workspace builds without network access, so the slice of proptest
//! its test suites use is vendored here: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and [`Just`] strategies, tuple and
//! `prop::collection::vec` composition, `prop_oneof!`, and the
//! [`proptest!`] test macro with `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG and failures are **not shrunk** — the panic message
//! reports the failing assertion only. That trade-off keeps the vendored
//! surface tiny while preserving the tests' semantics.

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test deterministic RNG (xoshiro256** seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics when `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the heavier simulation
            // suites fast while still exploring a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// draws one random value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// Uniform choice among type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Strategy for vectors of `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used by `proptest::prelude`.
pub mod prop {
    pub use crate::collection;
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body (no shrinking: this is
/// a plain panic carrying the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `ProptestConfig::cases`
/// randomly generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // The closure gives `prop_assume!` (and upstream-style
                    // `return Ok(())`) an early exit that skips only the
                    // current case; assertion macros panic directly.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ()> = (|| {
                        $body
                        Ok(())
                    })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5..2.5f64, z in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn map_and_vec_compose(xs in prop::collection::vec(evens(), 5)) {
            prop_assert_eq!(xs.len(), 5);
            prop_assert!(xs.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn flat_map_builds_dependent_pairs((n, k) in (1usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(k < n);
        }

        #[test]
        fn oneof_picks_each_arm(x in prop_oneof![Just(1u64), Just(2u64)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x >= 5);
            prop_assert!(x >= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(_x in 0u64..2) {
            // Runs without panicking for each of the 7 cases.
        }
    }
}
