//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds on machines with no access to crates.io, so the
//! small slice of `rand` it actually uses is vendored here: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] sampling trait
//! with `gen`/`gen_range`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! upstream ChaCha-based `StdRng`, so streams differ from the real crate,
//! but every consumer in this workspace only relies on determinism and
//! statistical quality, both of which xoshiro256** provides.

/// Seedable RNG constructors (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`]
/// (stands in for `rand`'s `Standard` distribution).
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (stands in for
/// `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the workspace's statistics can detect.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_range!(usize, u64, u32, i32, i64);

/// The sampling interface (mirrors the parts of `rand::Rng` this
/// workspace uses).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over its `Sample` domain).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities (mirrors `rand::seq::SliceRandom::shuffle`).

    use super::Rng;

    /// In-place shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.gen_range(0usize..10);
            seen[i] = true;
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let k = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&k));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit over 1000 draws");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "shuffle moved something");
    }
}
