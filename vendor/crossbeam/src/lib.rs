//! Offline, API-compatible subset of `crossbeam`.
//!
//! This workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}`; a Mutex + Condvar MPMC queue provides the same semantics
//! (cloneable ends, blocking `recv`, disconnect on last-drop) at thread
//! counts where contention is irrelevant.

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver has been
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty;
        /// fails once it is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_arrive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn blocking_recv_crosses_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }
    }
}
