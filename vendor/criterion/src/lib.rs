//! Offline, API-compatible subset of `criterion`.
//!
//! This workspace builds without network access, so the benchmark surface
//! it uses is vendored here: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology (simpler than upstream, honest about what it is): each
//! benchmark is warmed up, then timed over `sample_size` samples of an
//! adaptively chosen batch size targeting ~25 ms per sample; the median,
//! minimum, and maximum per-iteration times are printed. There is no
//! statistical regression analysis and no HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Runs the closure handed to `Bencher::iter` and measures it.
pub struct Bencher {
    /// Median/min/max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
    samples: usize,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes long enough to time reliably.
        let mut batch = 1u64;
        let calibration = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        let per_sample =
            (SAMPLE_TARGET.as_secs_f64() / calibration.max(1e-9)).clamp(1.0, 1e7) as u64;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_secs_f64() * 1e9 / per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        self.result = Some((median, min, max));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            result: None,
            samples: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            result: None,
            samples: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.result {
            Some((median, min, max)) => {
                println!(
                    "{}/{:<40} time: [{} {} {}]",
                    self.name,
                    id.id,
                    format_ns(min),
                    format_ns(median),
                    format_ns(max)
                );
                self.criterion
                    .results
                    .push((format!("{}/{}", self.name, id.id), median));
            }
            None => println!("{}/{} produced no measurement", self.name, id.id),
        }
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(full id, median ns/iter)` for every completed benchmark.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > 0.0, "median time must be positive");
    }

    #[test]
    fn benchmark_ids_format() {
        let id = BenchmarkId::new("cge", "n100_d10000");
        assert_eq!(id.id, "cge/n100_d10000");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
